package cli

import (
	"testing"

	"ntcs/internal/addr"
	"ntcs/internal/machine"
)

func TestParseBindings(t *testing.T) {
	got, err := ParseBindings("a=127.0.0.1:4001, b=127.0.0.1:4002,c=")
	if err != nil {
		t.Fatal(err)
	}
	want := []Binding{
		{Network: "a", Addr: "127.0.0.1:4001"},
		{Network: "b", Addr: "127.0.0.1:4002"},
		{Network: "c", Addr: ""},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("binding %d = %v, want %v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "noequals", "=addr", "a=x,,"} {
		if _, err := ParseBindings(bad); err == nil {
			t.Errorf("ParseBindings(%q) should fail", bad)
		}
	}
}

func TestOpenNetworks(t *testing.T) {
	bindings := []Binding{
		{Network: "a", Addr: "127.0.0.1:0"},
		{Network: "b", Addr: ""},
		{Network: "a", Addr: "127.0.0.1:9"}, // duplicate network: one Net
	}
	nets, hints := OpenNetworks(bindings)
	if len(nets) != 2 {
		t.Errorf("nets = %d, want 2 (deduplicated)", len(nets))
	}
	if hints["a"] != "127.0.0.1:9" || hints["b"] != "" {
		t.Errorf("hints = %v", hints)
	}
}

func TestParseWellKnown(t *testing.T) {
	wk, err := ParseWellKnown("backbone=127.0.0.1:4001,branch=127.0.0.1:4002", "apollo")
	if err != nil {
		t.Fatal(err)
	}
	if len(wk.NameServers) != 1 {
		t.Fatalf("wk = %+v", wk)
	}
	entry := wk.NameServers[0]
	if entry.UAdd != addr.NameServer || len(entry.Endpoints) != 2 {
		t.Errorf("entry = %+v", entry)
	}
	if entry.Endpoints[0].Machine != machine.Apollo {
		t.Errorf("machine = %v", entry.Endpoints[0].Machine)
	}
	if entry.Endpoints[0].Network != "backbone" || entry.Endpoints[0].Addr != "127.0.0.1:4001" ||
		entry.Endpoints[1].Network != "branch" || entry.Endpoints[1].Addr != "127.0.0.1:4002" {
		t.Errorf("endpoints = %+v", entry.Endpoints)
	}
	if entry.Name != "ns" {
		t.Errorf("name = %q, want the conventional single-NS name", entry.Name)
	}

	// Empty spec: no preload (the nameserver binary itself).
	wk, err = ParseWellKnown("", "apollo")
	if err != nil || len(wk.NameServers) != 0 {
		t.Errorf("empty spec: %+v, %v", wk, err)
	}
	if _, err := ParseWellKnown("a=127.0.0.1:1", "pdp11"); err == nil {
		t.Error("bad machine should fail")
	}
	if _, err := ParseWellKnown("a=", "apollo"); err == nil {
		t.Error("empty NS address should fail")
	}
	if _, err := ParseWellKnown("garbage", "apollo"); err == nil {
		t.Error("malformed spec should fail")
	}
}
