package cli

import (
	"strings"
	"testing"

	"ntcs/internal/addr"
	"ntcs/internal/machine"
)

const sampleTopo = `
# two-shard naming tier, one prime gateway, two workers
nameserver ns0 machine=apollo slot=0 shard=0 bind=backbone=127.0.0.1:4001
nameserver ns1 machine=vax    slot=1 shard=0 bind=backbone=127.0.0.1:4002
nameserver ns2 machine=apollo slot=2 shard=1 bind=backbone=127.0.0.1:4003
gateway    gw1 machine=sun68k prime=true bind=backbone=127.0.0.1:4101,branch=127.0.0.1:4102
gateway    gw2 machine=sun68k networks=backbone,branch
worker     echo-a machine=apollo role=echo networks=backbone
worker     echo-b machine=vax    role=echo networks=branch
`

func parseSample(t *testing.T) *Topology {
	t.Helper()
	topo, err := ParseTopology(strings.NewReader(sampleTopo))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestParseTopology(t *testing.T) {
	topo := parseSample(t)
	if len(topo.Procs) != 7 {
		t.Fatalf("procs = %d, want 7", len(topo.Procs))
	}
	ns1, ok := topo.Proc("ns1")
	if !ok || ns1.Kind != ProcNameServer || ns1.Slot != 1 || ns1.Shard != 0 || ns1.Machine != machine.VAX {
		t.Errorf("ns1 = %+v", ns1)
	}
	if got := ns1.UAdd(); got != addr.NameServer+1 {
		t.Errorf("ns1 UAdd = %v", got)
	}
	gw1, _ := topo.Proc("gw1")
	if !gw1.Prime || gw1.UAdd() != addr.PrimeGatewayBase {
		t.Errorf("gw1 = %+v", gw1)
	}
	gw2, _ := topo.Proc("gw2")
	if gw2.Prime || gw2.UAdd() != addr.Nil || len(gw2.Bindings) != 2 || gw2.Bindings[0].Addr != "" {
		t.Errorf("gw2 = %+v", gw2)
	}
	echoA, _ := topo.Proc("echo-a")
	if echoA.Role != "echo" || len(echoA.NetworkIDs()) != 1 || echoA.NetworkIDs()[0] != "backbone" {
		t.Errorf("echo-a = %+v", echoA)
	}
	if _, ok := topo.Proc("nope"); ok {
		t.Error("Proc(nope) should miss")
	}
}

func TestParseTopologyMalformed(t *testing.T) {
	cases := map[string]string{
		"unknown kind":       "daemon x networks=a",
		"missing name":       "worker",
		"bare token":         "worker w networks=a junk",
		"unknown key":        "worker w networks=a color=red",
		"bad slot":           "nameserver n slot=x shard=0 bind=a=127.0.0.1:1",
		"bad shard":          "nameserver n slot=0 shard=x bind=a=127.0.0.1:1",
		"bad prime":          "gateway g prime=maybe bind=a=127.0.0.1:1,b=127.0.0.1:2",
		"bad machine":        "worker w machine=pdp11 networks=a",
		"bad binding":        "worker w bind=nocolon",
		"no networks":        "worker w machine=apollo",
		"dup name":           "worker w networks=a\nworker w networks=b",
		"dup network":        "worker w networks=a,a",
		"slot out of range":  "nameserver n slot=16 shard=0 bind=a=127.0.0.1:1",
		"negative slot":      "nameserver n slot=-1 shard=0 bind=a=127.0.0.1:1",
		"negative shard":     "nameserver n slot=0 shard=-1 bind=a=127.0.0.1:1",
		"duplicate slot":     "nameserver n0 slot=3 shard=0 bind=a=127.0.0.1:1\nnameserver n1 slot=3 shard=0 bind=a=127.0.0.1:2",
		"gateway one net":    "gateway g bind=a=127.0.0.1:1",
		"shard gap":          "nameserver n0 slot=0 shard=1 bind=a=127.0.0.1:1",
		"four replica shard": "nameserver n0 slot=0 shard=0 bind=a=127.0.0.1:1\nnameserver n1 slot=1 shard=0 bind=a=127.0.0.1:2\nnameserver n2 slot=2 shard=0 bind=a=127.0.0.1:3\nnameserver n3 slot=3 shard=0 bind=a=127.0.0.1:4",
	}
	for name, spec := range cases {
		if _, err := ParseTopology(strings.NewReader(spec)); err == nil {
			t.Errorf("%s: ParseTopology(%q) should fail", name, spec)
		}
	}
}

func TestTopologyWellKnown(t *testing.T) {
	topo := parseSample(t)
	wk, err := topo.WellKnown()
	if err != nil {
		t.Fatal(err)
	}
	if len(wk.NameServers) != 3 || len(wk.Gateways) != 1 {
		t.Fatalf("wk = %+v", wk)
	}
	// Slot order regardless of file order, shard + serverID derived.
	for i, want := range []struct {
		name  string
		shard int
		id    uint16
	}{{"ns0", 0, 1}, {"ns1", 0, 2}, {"ns2", 1, 3}} {
		e := wk.NameServers[i]
		if e.Name != want.name || e.Shard != want.shard || e.ServerID != want.id ||
			e.UAdd != addr.NameServer+addr.UAdd(i) {
			t.Errorf("NS[%d] = %+v, want %+v", i, e, want)
		}
	}
	gw := wk.Gateways[0]
	if gw.Name != "gw1" || gw.UAdd != addr.PrimeGatewayBase || len(gw.Endpoints) != 2 {
		t.Errorf("gateway entry = %+v", gw)
	}
	if gw.Endpoints[0].Machine != machine.Sun68K {
		t.Errorf("gateway machine = %v", gw.Endpoints[0].Machine)
	}

	// A preloaded process with an ephemeral binding cannot be preloaded.
	eph := `nameserver n0 slot=0 shard=0 networks=a`
	topo2, err := ParseTopology(strings.NewReader(eph))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo2.WellKnown(); err == nil {
		t.Error("ephemeral NS binding should fail WellKnown")
	}
}

func TestTopologyNSPeers(t *testing.T) {
	topo := parseSample(t)
	peers := topo.NSPeers("ns0")
	if len(peers) != 1 || peers[0].Name != "ns1" {
		t.Errorf("NSPeers(ns0) = %+v", peers)
	}
	if got := topo.NSPeers("ns2"); len(got) != 0 {
		t.Errorf("NSPeers(ns2) = %+v, want none (lone replica)", got)
	}
	if got := topo.NSPeers("gw1"); got != nil {
		t.Errorf("NSPeers(gw1) = %+v, want nil", got)
	}
}

func TestTopologyFormatRoundTrip(t *testing.T) {
	topo := parseSample(t)
	reparsed, err := ParseTopology(strings.NewReader(topo.Format()))
	if err != nil {
		t.Fatalf("reparse emitted topology: %v\n%s", err, topo.Format())
	}
	if len(reparsed.Procs) != len(topo.Procs) {
		t.Fatalf("round trip lost procs: %d != %d", len(reparsed.Procs), len(topo.Procs))
	}
	for i := range topo.Procs {
		a, b := topo.Procs[i], reparsed.Procs[i]
		if a.Kind != b.Kind || a.Name != b.Name || a.Machine != b.Machine ||
			a.Slot != b.Slot || a.Shard != b.Shard || a.Prime != b.Prime ||
			a.Role != b.Role || len(a.Bindings) != len(b.Bindings) {
			t.Errorf("proc %d: %+v != %+v", i, a, b)
		}
	}
	wantWK, _ := topo.WellKnown()
	gotWK, err := reparsed.WellKnown()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotWK.NameServers) != len(wantWK.NameServers) || len(gotWK.Gateways) != len(wantWK.Gateways) {
		t.Errorf("round trip changed preload: %+v != %+v", gotWK, wantWK)
	}
}
