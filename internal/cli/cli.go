// Package cli holds the shared configuration plumbing of the NTCS
// command-line binaries: parsing "network=address" bindings and
// assembling the well-known preload (§3.4) that, on the 1986 testbed, was
// each machine's site configuration file.
package cli

import (
	"fmt"
	"strings"

	"ntcs/internal/addr"
	"ntcs/internal/ipcs"
	"ntcs/internal/ipcs/tcpnet"
	"ntcs/internal/machine"
)

// Binding is one "network=hostport" attachment.
type Binding struct {
	Network string
	Addr    string
}

// ParseBindings parses "a=127.0.0.1:4001,b=127.0.0.1:4002". The address
// part may be empty ("a=") for an ephemeral port.
func ParseBindings(spec string) ([]Binding, error) {
	if spec == "" {
		return nil, fmt.Errorf("cli: empty binding list")
	}
	var out []Binding
	for _, part := range strings.Split(spec, ",") {
		network, address, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || network == "" {
			return nil, fmt.Errorf("cli: binding %q is not network=address", part)
		}
		out = append(out, Binding{Network: network, Addr: address})
	}
	return out, nil
}

// OpenNetworks creates one open TCP IPCS per binding and returns the
// networks with their endpoint hints.
func OpenNetworks(bindings []Binding) ([]ipcs.Network, map[string]string) {
	nets := make([]ipcs.Network, 0, len(bindings))
	hints := make(map[string]string, len(bindings))
	seen := make(map[string]bool, len(bindings))
	for _, b := range bindings {
		if !seen[b.Network] {
			seen[b.Network] = true
			nets = append(nets, tcpnet.NewOpen(b.Network))
		}
		hints[b.Network] = b.Addr
	}
	return nets, hints
}

// ParseWellKnown parses the Name Server preload flag,
// "network=host:port[,network=host:port...]" — the NS's endpoint on each
// network it serves. machineName is the NS host's machine type.
func ParseWellKnown(nsSpec, machineName string) (addr.WellKnown, error) {
	var wk addr.WellKnown
	if nsSpec == "" {
		return wk, nil
	}
	m, err := machine.ParseType(machineName)
	if err != nil {
		return wk, err
	}
	bindings, err := ParseBindings(nsSpec)
	if err != nil {
		return wk, fmt.Errorf("cli: -ns: %w", err)
	}
	entry := addr.WellKnownEntry{Name: "ns", UAdd: addr.NameServer}
	for _, b := range bindings {
		if b.Addr == "" {
			return wk, fmt.Errorf("cli: -ns binding %q needs an explicit address", b.Network)
		}
		entry.Endpoints = append(entry.Endpoints, addr.Endpoint{
			Network: b.Network,
			Addr:    b.Addr,
			Machine: m,
		})
	}
	wk.NameServers = []addr.WellKnownEntry{entry}
	return wk, nil
}
