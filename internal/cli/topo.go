package cli

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ntcs/internal/addr"
	"ntcs/internal/machine"
)

// Topology is a declarative multi-process deployment: the site
// configuration file of §3.4 grown into the unit of deployment. One file
// describes every process of the system — name servers with their
// well-known slots and shard groups, gateways with their network
// bindings, application workers — and each cmd binary boots its own
// entry (-topo file -proc name) while deriving the shared well-known
// preload from the rest of the file. The 1986 testbed's hand-edited
// per-machine configuration, as one artifact.
type Topology struct {
	Procs []TopoProc
}

// Process kinds of a topology entry.
const (
	ProcNameServer = "nameserver"
	ProcGateway    = "gateway"
	ProcWorker     = "worker"
)

// TopoProc is one process of the deployment.
type TopoProc struct {
	// Kind is nameserver, gateway, or worker.
	Kind string
	// Name is the process (and module) name, unique in the topology.
	Name string
	// Machine is the simulated machine type of the process's host.
	Machine machine.Type
	// Bindings are the process's network attachments. Name servers and
	// prime gateways need explicit addresses (they are preloaded into
	// every other process); workers may bind ephemerally.
	Bindings []Binding
	// Slot is the well-known Name Server slot (name servers only):
	// UAdd = addr.NameServer + Slot, generated UAdds carry Slot+1.
	Slot int
	// Shard is the namespace partition the Name Server serves (name
	// servers only). Same-shard servers form a replica group.
	Shard int
	// Prime marks a gateway preloaded into the well-known tables (§3.4).
	Prime bool
	// PrimeUAdd is the assigned prime gateway UAdd (derived at parse
	// time from file order: first prime gets addr.PrimeGatewayBase).
	PrimeUAdd addr.UAdd
	// Role is the worker's application role attribute ("echo" workers
	// serve the echo protocol the harness drives).
	Role string
	// AntiEntropy is the Name Server's digest reconciliation interval
	// (0 = off); TombstoneTTL bounds dead-record retention (0 = forever).
	AntiEntropy  time.Duration
	TombstoneTTL time.Duration
}

// NetworkIDs returns the process's attached network IDs, in binding order.
func (p *TopoProc) NetworkIDs() []string {
	out := make([]string, 0, len(p.Bindings))
	for _, b := range p.Bindings {
		out = append(out, b.Network)
	}
	return out
}

// UAdd returns the process's preassigned well-known UAdd, or addr.Nil
// for workers and ordinary gateways.
func (p *TopoProc) UAdd() addr.UAdd {
	switch {
	case p.Kind == ProcNameServer:
		return addr.NameServer + addr.UAdd(p.Slot)
	case p.Kind == ProcGateway && p.Prime:
		return p.PrimeUAdd
	default:
		return addr.Nil
	}
}

// ParseTopology reads a topology file: one process per line,
//
//	<kind> <name> key=value ...
//
// with '#' comments and blank lines ignored. Keys: machine=, bind=
// (network=host:port, comma separated), networks= (ephemeral bindings by
// network ID), slot=, shard=, prime=, role=. The parsed topology is
// validated (unique names, unique slots, at most three replicas per
// shard group, contiguous shards, gateway network counts).
func ParseTopology(r io.Reader) (*Topology, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	t := &Topology{}
	primes := 0
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("cli: topology line %d: want <kind> <name> key=value..., got %q", i+1, line)
		}
		p := TopoProc{Kind: fields[0], Name: fields[1], Machine: machine.Apollo}
		switch p.Kind {
		case ProcNameServer, ProcGateway, ProcWorker:
		default:
			return nil, fmt.Errorf("cli: topology line %d: unknown kind %q", i+1, p.Kind)
		}
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("cli: topology line %d: %q is not key=value", i+1, kv)
			}
			switch key {
			case "machine":
				m, err := machine.ParseType(val)
				if err != nil {
					return nil, fmt.Errorf("cli: topology line %d: %v", i+1, err)
				}
				p.Machine = m
			case "bind":
				bs, err := ParseBindings(val)
				if err != nil {
					return nil, fmt.Errorf("cli: topology line %d: %v", i+1, err)
				}
				p.Bindings = append(p.Bindings, bs...)
			case "networks":
				for _, id := range strings.Split(val, ",") {
					if id = strings.TrimSpace(id); id != "" {
						p.Bindings = append(p.Bindings, Binding{Network: id})
					}
				}
			case "slot":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("cli: topology line %d: bad slot %q", i+1, val)
				}
				p.Slot = n
			case "shard":
				n, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("cli: topology line %d: bad shard %q", i+1, val)
				}
				p.Shard = n
			case "prime":
				b, err := strconv.ParseBool(val)
				if err != nil {
					return nil, fmt.Errorf("cli: topology line %d: bad prime %q", i+1, val)
				}
				p.Prime = b
			case "role":
				p.Role = val
			case "anti-entropy":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("cli: topology line %d: bad anti-entropy %q", i+1, val)
				}
				p.AntiEntropy = d
			case "tombstone-ttl":
				d, err := time.ParseDuration(val)
				if err != nil {
					return nil, fmt.Errorf("cli: topology line %d: bad tombstone-ttl %q", i+1, val)
				}
				p.TombstoneTTL = d
			default:
				return nil, fmt.Errorf("cli: topology line %d: unknown key %q", i+1, key)
			}
		}
		if p.Kind == ProcGateway && p.Prime {
			p.PrimeUAdd = addr.PrimeGatewayBase + addr.UAdd(primes)
			primes++
		}
		t.Procs = append(t.Procs, p)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseTopologyFile is ParseTopology over a file path.
func ParseTopologyFile(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTopology(f)
}

// Validate checks the deployment invariants. ParseTopology already ran
// it; call it again after programmatic edits (port assignment).
func (t *Topology) Validate() error {
	names := make(map[string]bool, len(t.Procs))
	slots := make(map[int]string)
	shardSizes := make(map[int]int)
	maxShard := -1
	primes := 0
	for i := range t.Procs {
		p := &t.Procs[i]
		if p.Name == "" {
			return fmt.Errorf("cli: topology: %s entry with empty name", p.Kind)
		}
		if names[p.Name] {
			return fmt.Errorf("cli: topology: duplicate process name %q", p.Name)
		}
		names[p.Name] = true
		if len(p.Bindings) == 0 {
			return fmt.Errorf("cli: topology: %q attaches to no network", p.Name)
		}
		seen := make(map[string]bool, len(p.Bindings))
		for _, b := range p.Bindings {
			if seen[b.Network] {
				return fmt.Errorf("cli: topology: %q binds network %q twice", p.Name, b.Network)
			}
			seen[b.Network] = true
		}
		switch p.Kind {
		case ProcNameServer:
			if p.Slot < 0 || p.Slot > int(addr.NameServerLimit-addr.NameServer) {
				return fmt.Errorf("cli: topology: %q slot %d outside the well-known range 0-%d",
					p.Name, p.Slot, int(addr.NameServerLimit-addr.NameServer))
			}
			if prev, dup := slots[p.Slot]; dup {
				return fmt.Errorf("cli: topology: %q and %q both claim name-server slot %d", prev, p.Name, p.Slot)
			}
			slots[p.Slot] = p.Name
			if p.Shard < 0 {
				return fmt.Errorf("cli: topology: %q has negative shard %d", p.Name, p.Shard)
			}
			shardSizes[p.Shard]++
			if shardSizes[p.Shard] > 3 {
				return fmt.Errorf("cli: topology: shard %d has more than three replicas (primary + two)", p.Shard)
			}
			if p.Shard > maxShard {
				maxShard = p.Shard
			}
		case ProcGateway:
			if len(p.Bindings) < 2 {
				return fmt.Errorf("cli: topology: gateway %q must join at least two networks", p.Name)
			}
			if p.Prime {
				primes++
			}
		}
	}
	// The namespace hash-partitions over max(Shard)+1 groups: a gap in
	// the shard numbering is an empty group every name hashing there
	// would fail against, so reject it at the file.
	for s := 0; s <= maxShard; s++ {
		if shardSizes[s] == 0 {
			return fmt.Errorf("cli: topology: shard %d has no name server (shards must be contiguous from 0)", s)
		}
	}
	if primes > int(addr.PrimeGatewayLimit-addr.PrimeGatewayBase)+1 {
		return fmt.Errorf("cli: topology: %d prime gateways exceed the well-known range", primes)
	}
	return nil
}

// Proc returns the named process entry.
func (t *Topology) Proc(name string) (*TopoProc, bool) {
	for i := range t.Procs {
		if t.Procs[i].Name == name {
			return &t.Procs[i], true
		}
	}
	return nil, false
}

// WellKnown derives the preload (§3.4) every process of this topology is
// born with: each Name Server entry with its slot, shard and serverID,
// and each prime gateway. It fails if a preloaded process still has an
// ephemeral binding — a preload with no address is unreachable by
// definition.
func (t *Topology) WellKnown() (addr.WellKnown, error) {
	var wk addr.WellKnown
	for i := range t.Procs {
		p := &t.Procs[i]
		preloaded := p.Kind == ProcNameServer || (p.Kind == ProcGateway && p.Prime)
		if !preloaded {
			continue
		}
		entry := addr.WellKnownEntry{Name: p.Name, UAdd: p.UAdd()}
		for _, b := range p.Bindings {
			if b.Addr == "" || strings.HasSuffix(b.Addr, ":0") {
				return wk, fmt.Errorf("cli: topology: preloaded %q needs an explicit address on %q", p.Name, b.Network)
			}
			entry.Endpoints = append(entry.Endpoints, addr.Endpoint{Network: b.Network, Addr: b.Addr, Machine: p.Machine})
		}
		if p.Kind == ProcNameServer {
			entry.Shard = p.Shard
			entry.ServerID = uint16(p.Slot + 1)
			wk.NameServers = append(wk.NameServers, entry)
		} else {
			wk.Gateways = append(wk.Gateways, entry)
		}
	}
	// Stable slot order: ShardForName et al. iterate the preload, and
	// every process must derive the identical shard map from one file.
	sort.SliceStable(wk.NameServers, func(i, j int) bool {
		return wk.NameServers[i].UAdd < wk.NameServers[j].UAdd
	})
	return wk, nil
}

// NSPeers returns the replica peers of the named Name Server: every
// other server in its shard group. Writes propagate within the group
// and anti-entropy reconciles it, exactly as -peers configures by hand.
func (t *Topology) NSPeers(name string) []*TopoProc {
	self, ok := t.Proc(name)
	if !ok || self.Kind != ProcNameServer {
		return nil
	}
	var out []*TopoProc
	for i := range t.Procs {
		p := &t.Procs[i]
		if p.Kind == ProcNameServer && p.Name != name && p.Shard == self.Shard {
			out = append(out, p)
		}
	}
	return out
}

// Format renders the topology back into the file form ParseTopology
// reads: emit and consume round-trip.
func (t *Topology) Format() string {
	var b strings.Builder
	b.WriteString("# NTCS topology — one process per line: <kind> <name> key=value ...\n")
	for i := range t.Procs {
		p := &t.Procs[i]
		fmt.Fprintf(&b, "%-10s %s machine=%s", p.Kind, p.Name, strings.ToLower(p.Machine.String()))
		switch p.Kind {
		case ProcNameServer:
			fmt.Fprintf(&b, " slot=%d shard=%d", p.Slot, p.Shard)
			if p.AntiEntropy > 0 {
				fmt.Fprintf(&b, " anti-entropy=%s", p.AntiEntropy)
			}
			if p.TombstoneTTL > 0 {
				fmt.Fprintf(&b, " tombstone-ttl=%s", p.TombstoneTTL)
			}
		case ProcGateway:
			if p.Prime {
				b.WriteString(" prime=true")
			}
		case ProcWorker:
			if p.Role != "" {
				fmt.Fprintf(&b, " role=%s", p.Role)
			}
		}
		explicit := make([]string, 0, len(p.Bindings))
		ephemeral := make([]string, 0, len(p.Bindings))
		for _, bind := range p.Bindings {
			if bind.Addr == "" {
				ephemeral = append(ephemeral, bind.Network)
			} else {
				explicit = append(explicit, bind.Network+"="+bind.Addr)
			}
		}
		if len(explicit) > 0 {
			fmt.Fprintf(&b, " bind=%s", strings.Join(explicit, ","))
		}
		if len(ephemeral) > 0 {
			fmt.Fprintf(&b, " networks=%s", strings.Join(ephemeral, ","))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
