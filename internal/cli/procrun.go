package cli

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ntcs/internal/addr"
	"ntcs/internal/core"
	"ntcs/internal/nameserver"
	"ntcs/internal/stats"
	"ntcs/internal/stats/statshttp"
)

// ProcOptions configure one OS process booted from a topology file
// (the -topo/-proc flags shared by the cmd binaries).
type ProcOptions struct {
	// TopoPath is the topology file; Proc names this process's entry.
	TopoPath string
	Proc     string
	// HTTPAddr, when non-empty, serves /stats, /stats.json, expvar and
	// pprof for this process ("127.0.0.1:0" for an ephemeral port).
	HTTPAddr string
	// DrainTimeout bounds the SIGTERM graceful-drain quiesce and flush
	// phases (default 5s).
	DrainTimeout time.Duration
}

// ProcRuntime is a topology entry running as this OS process.
type ProcRuntime struct {
	Mod       *core.Module
	Topo      *Topology
	Entry     *TopoProc
	StatsAddr string // bound stats listener, "" when off

	statsSrv *http.Server
}

// StartProc boots the named topology entry: it opens the entry's
// networks, derives the shared well-known preload from the file, attaches
// the module (TAdd bootstrap against the remote NS for workers and
// non-prime gateways), seeds replica peers for name servers, and starts
// the optional stats listener. The caller prints ReadyLine and runs its
// serve loop (or WaitSignals).
func StartProc(opts ProcOptions) (*ProcRuntime, error) {
	topo, err := ParseTopologyFile(opts.TopoPath)
	if err != nil {
		return nil, err
	}
	entry, ok := topo.Proc(opts.Proc)
	if !ok {
		return nil, fmt.Errorf("cli: topology %s has no process %q", opts.TopoPath, opts.Proc)
	}
	mod, err := AttachEntry(topo, entry)
	if err != nil {
		return nil, err
	}
	rt := &ProcRuntime{Mod: mod, Topo: topo, Entry: entry}

	if opts.HTTPAddr != "" {
		collect := func() []stats.Snapshot { return []stats.Snapshot{mod.Stats().Snapshot()} }
		srv, bound, err := statshttp.Serve(opts.HTTPAddr, collect)
		if err != nil {
			mod.Kill()
			return nil, fmt.Errorf("cli: stats listener: %w", err)
		}
		rt.statsSrv, rt.StatsAddr = srv, bound
	}
	return rt, nil
}

// AttachEntry attaches one topology entry as a live module: it opens the
// entry's networks, derives the shared well-known preload from the file,
// attaches with the kind-appropriate configuration, and — for name
// servers — seeds the replica peers' records (reachable through the
// server's own Nucleus before any traffic flows) and turns on write
// propagation; anti-entropy reconciles whatever the seeds miss. Shared
// by the cmd binaries (one entry per OS process) and the in-process
// deployment fixture (every entry in one test process).
func AttachEntry(topo *Topology, entry *TopoProc) (*core.Module, error) {
	wk, err := topo.WellKnown()
	if err != nil {
		return nil, err
	}
	nets, hints := OpenNetworks(entry.Bindings)

	cfg := core.Config{
		Name:          entry.Name,
		Machine:       entry.Machine,
		Networks:      nets,
		EndpointHints: hints,
		WellKnown:     wk,
	}
	switch entry.Kind {
	case ProcNameServer:
		cfg.Kind = core.KindNameServer
		cfg.FixedUAdd = entry.UAdd()
		cfg.ServerID = uint16(entry.Slot + 1)
		cfg.NSAntiEntropy = entry.AntiEntropy
		cfg.NSTombstoneTTL = entry.TombstoneTTL
	case ProcGateway:
		cfg.Kind = core.KindGateway
		if entry.Prime {
			cfg.FixedUAdd = entry.UAdd()
		}
	default:
		cfg.Kind = core.KindApplication
		if entry.Role != "" {
			cfg.Attrs = map[string]string{"role": entry.Role}
		}
	}

	mod, err := core.Attach(cfg)
	if err != nil {
		return nil, err
	}

	if entry.Kind == ProcNameServer {
		peers := topo.NSPeers(entry.Name)
		uadds := make([]addr.UAdd, 0, len(peers))
		for _, p := range peers {
			eps := make([]addr.Endpoint, 0, len(p.Bindings))
			for _, b := range p.Bindings {
				eps = append(eps, addr.Endpoint{Network: b.Network, Addr: b.Addr, Machine: p.Machine})
			}
			mod.DB().Insert(nameserver.Record{
				Name:      p.Name,
				UAdd:      p.UAdd(),
				Attrs:     map[string]string{"type": "nameserver"},
				Endpoints: eps,
				Alive:     true,
			})
			uadds = append(uadds, p.UAdd())
		}
		if len(uadds) > 0 {
			mod.SetNameServerReplicas(uadds)
		}
	}
	return mod, nil
}

// NewRuntime wraps an already-attached module in a ProcRuntime — the
// legacy hand-flag path of the cmd binaries, which shares the ready-line
// and drain plumbing with the -topo path.
func NewRuntime(mod *core.Module, httpAddr string) (*ProcRuntime, error) {
	rt := &ProcRuntime{Mod: mod, Entry: &TopoProc{Name: mod.Name()}}
	if httpAddr != "" {
		collect := func() []stats.Snapshot { return []stats.Snapshot{mod.Stats().Snapshot()} }
		srv, bound, err := statshttp.Serve(httpAddr, collect)
		if err != nil {
			mod.Kill()
			return nil, fmt.Errorf("cli: stats listener: %w", err)
		}
		rt.statsSrv, rt.StatsAddr = srv, bound
	}
	return rt, nil
}

// ReadyLine is the machine-readable boot announcement the process harness
// scans for on stdout:
//
//	ntcs-proc ready name=<proc> uadd=<uadd> stats=<host:port|->
func (rt *ProcRuntime) ReadyLine() string {
	statsAddr := rt.StatsAddr
	if statsAddr == "" {
		statsAddr = "-"
	}
	return fmt.Sprintf("ntcs-proc ready name=%s uadd=%d stats=%s", rt.Entry.Name, uint64(rt.Mod.UAdd()), statsAddr)
}

// DrainedLine is the companion announcement after a graceful drain.
func (rt *ProcRuntime) DrainedLine() string {
	return fmt.Sprintf("ntcs-proc drained name=%s", rt.Entry.Name)
}

// Drain runs the module's graceful shutdown (deregister, quiesce, flush,
// teardown — see core.Module.Drain) bounded by timeout, then closes the
// stats listener. The error is the deregistration outcome; the process
// should still exit 0 — the drain is best-effort politeness, not a
// correctness gate.
func (rt *ProcRuntime) Drain(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := rt.Mod.Drain(ctx)
	if rt.statsSrv != nil {
		_ = rt.statsSrv.Close()
	}
	return err
}

// Close tears the runtime down without draining (the deferred cleanup
// path when the serve loop fails).
func (rt *ProcRuntime) Close() {
	if rt.statsSrv != nil {
		_ = rt.statsSrv.Close()
	}
	_ = rt.Mod.Detach()
}

// WaitSignals blocks until SIGINT or SIGTERM.
func WaitSignals() os.Signal {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig)
	return s
}
