package sim

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ntcs/internal/core"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/retry"
	"ntcs/internal/stats"
)

// ChaosEvent is one scheduled fault action.
type ChaosEvent struct {
	// At is the offset from the start of Run.
	At time.Duration
	// Name labels the event in the run log.
	Name string
	// Do performs the fault (or the heal).
	Do func()
}

// ChaosRecord is one fired event in the run log.
type ChaosRecord struct {
	Name    string
	Planned time.Duration // scheduled offset
	Fired   time.Duration // actual offset from Run start
	// Delta holds the nonzero world-wide counter movements since the
	// previous event fired (or since Run started, for the first event).
	// Nil unless ObserveStats installed a snapshot source.
	Delta map[string]uint64
}

// Chaos is the failure-injection side of the testbed: a deterministic
// schedule of network degradations (loss, latency, partitions) and module
// crashes, played back against a running World. The 1986 project proved
// its recovery paths by literally unplugging Apollo ring nodes; Chaos is
// that cable-pull with a fixed seed, so a failing soak reproduces.
//
// Build the schedule with the episode helpers (or Schedule for arbitrary
// actions), optionally Perturb the offsets from the seed, then Run it. A
// Chaos is single-use.
type Chaos struct {
	rng *rand.Rand

	mu      sync.Mutex
	events  []ChaosEvent
	log     []ChaosRecord
	observe func() stats.Snapshot
}

// NewChaos creates an empty schedule. The seed drives Perturb; two Chaos
// instances with the same seed and the same build sequence fire the same
// schedule.
func NewChaos(seed int64) *Chaos {
	if seed == 0 {
		seed = 1
	}
	return &Chaos{rng: rand.New(rand.NewSource(seed))}
}

// ObserveStats installs a snapshot source — typically World.StatsTotals —
// so every fired event records the counter deltas of the episode that
// preceded it: which retries, failovers and rotations each fault bought.
func (c *Chaos) ObserveStats(fn func() stats.Snapshot) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observe = fn
	return c
}

// Schedule adds an arbitrary event.
func (c *Chaos) Schedule(at time.Duration, name string, do func()) *Chaos {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ChaosEvent{At: at, Name: name, Do: do})
	return c
}

// LossEpisode drops each message on n with probability p from at until
// at+dur, then restores the network's configured loss.
func (c *Chaos) LossEpisode(n *memnet.Net, at, dur time.Duration, p float64) *Chaos {
	c.Schedule(at, "loss "+n.ID(), func() { n.SetLossProb(p) })
	c.Schedule(at+dur, "heal-loss "+n.ID(), func() { n.SetLossProb(0) })
	return c
}

// LatencyEpisode degrades n's delivery delay from at until at+dur.
func (c *Chaos) LatencyEpisode(n *memnet.Net, at, dur, latency, jitter time.Duration) *Chaos {
	c.Schedule(at, "latency "+n.ID(), func() {
		n.SetLatency(latency)
		n.SetJitter(jitter)
	})
	c.Schedule(at+dur, "heal-latency "+n.ID(), func() {
		n.SetLatency(0)
		n.SetJitter(0)
	})
	return c
}

// Partition isolates one endpoint of n (existing connections break, new
// dials fail) from at until at+dur.
func (c *Chaos) Partition(n *memnet.Net, physAddr string, at, dur time.Duration) *Chaos {
	c.Schedule(at, "partition "+physAddr, func() { n.Isolate(physAddr, true) })
	c.Schedule(at+dur, "heal-partition "+physAddr, func() { n.Isolate(physAddr, false) })
	return c
}

// KillModule crashes m abruptly at the given offset: no deregistration,
// its naming record stays alive — peers must discover the death.
func (c *Chaos) KillModule(at time.Duration, name string, m *core.Module) *Chaos {
	return c.Schedule(at, "kill "+name, m.Kill)
}

// KillShard crashes an entire name-server shard group at the given
// offset: every replica dies at once, so resolution of names owned by
// the shard fails while names on other shards keep resolving — the
// graceful-degradation contract of the partitioned namespace.
func (c *Chaos) KillShard(at time.Duration, name string, servers ...*core.Module) *Chaos {
	return c.Schedule(at, "kill-shard "+name, func() {
		for _, m := range servers {
			m.Kill()
		}
	})
}

// SlowLorisEpisode turns m into a slow-loris receiver from at until
// at+dur: its credit admission rate drops to perSec grants per second,
// so every peer sending to it exhausts its circuit window and feels
// backpressure at the source — the congestion analogue of a cable pull,
// where nothing breaks but nothing drains either. Healing removes the
// bound.
func (c *Chaos) SlowLorisEpisode(at, dur time.Duration, name string, m *core.Module, perSec float64) *Chaos {
	c.Schedule(at, "slow-loris "+name, func() { m.SetAdmissionRate(perSec) })
	c.Schedule(at+dur, "heal-slow-loris "+name, func() { m.SetAdmissionRate(0) })
	return c
}

// Perturb shifts every scheduled offset by a seeded uniform amount in
// [-maxSkew, +maxSkew] (clamped at zero): the same seed always produces
// the same perturbation, so randomized schedules stay reproducible.
func (c *Chaos) Perturb(maxSkew time.Duration) *Chaos {
	if maxSkew <= 0 {
		return c
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.events {
		skew := time.Duration(c.rng.Int63n(int64(2*maxSkew))) - maxSkew
		if at := c.events[i].At + skew; at > 0 {
			c.events[i].At = at
		} else {
			c.events[i].At = 0
		}
	}
	return c
}

// Run plays the schedule: events fire in offset order (ties in insertion
// order) relative to the moment Run is called. Run blocks until the last
// event has fired or ctx is done, and returns the log of what fired.
func (c *Chaos) Run(ctx context.Context) []ChaosRecord {
	c.mu.Lock()
	events := make([]ChaosEvent, len(c.events))
	copy(events, c.events)
	observe := c.observe
	c.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	var prev stats.Snapshot
	if observe != nil {
		prev = observe()
	}
	start := time.Now()
	for _, ev := range events {
		if err := retry.Wait(ctx, nil, ev.At-time.Since(start)); err != nil {
			break
		}
		ev.Do()
		rec := ChaosRecord{Name: ev.Name, Planned: ev.At, Fired: time.Since(start)}
		if observe != nil {
			cur := observe()
			rec.Delta = cur.Sub(prev)
			prev = cur
		}
		c.mu.Lock()
		c.log = append(c.log, rec)
		c.mu.Unlock()
	}
	return c.Log()
}

// Log returns the events fired so far.
func (c *Chaos) Log() []ChaosRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ChaosRecord, len(c.log))
	copy(out, c.log)
	return out
}

// Duration reports the offset of the last scheduled event.
func (c *Chaos) Duration() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max time.Duration
	for _, ev := range c.events {
		if ev.At > max {
			max = ev.At
		}
	}
	return max
}
