// Package sim builds simulated URSA testbeds: machines of different
// types, disjoint networks (in-memory, TCP, or MBX), name servers, prime
// gateways, and application modules — the deployment side of the NTCS
// that the 1986 project did by hand across Apollo, VAX and Sun systems.
//
// A World owns the networks and the well-known address configuration
// (§3.4) that every module is born with. The intended order mirrors the
// real bootstrap: create networks and hosts, start the Name Server, start
// the prime gateways, then attach application modules.
package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ntcs/internal/addr"
	"ntcs/internal/core"
	"ntcs/internal/ipcs"
	"ntcs/internal/ipcs/mbx"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/ipcs/tcpnet"
	"ntcs/internal/machine"
	"ntcs/internal/nameserver"
	"ntcs/internal/stats"
)

// Host is a simulated machine: a machine type plus network attachments.
type Host struct {
	Name     string
	Machine  machine.Type
	Networks []ipcs.Network
}

// NetworkIDs returns the IDs of the host's attached networks.
func (h *Host) NetworkIDs() []string {
	out := make([]string, len(h.Networks))
	for i, n := range h.Networks {
		out[i] = n.ID()
	}
	return out
}

// World is one simulated testbed.
type World struct {
	mu          sync.Mutex
	networks    map[string]ipcs.Network
	hosts       map[string]*Host
	wellKnown   addr.WellKnown
	modules     []*core.Module
	nameServers []*core.Module
	nsShards    []int // shard group per nameServers entry
	nextGW      addr.UAdd
	nextNS      int
	hintSeq     int
	coalesce    bool

	// Name-server tuning applied to servers started afterwards.
	nsAntiEntropy  time.Duration
	nsTombstoneTTL time.Duration
}

// NewWorld creates an empty testbed.
func NewWorld() *World {
	return &World{
		networks: make(map[string]ipcs.Network),
		hosts:    make(map[string]*Host),
		nextGW:   addr.PrimeGatewayBase,
	}
}

// AddNetwork creates an in-memory simulated network.
func (w *World) AddNetwork(id string, opts memnet.Options) *memnet.Net {
	n := memnet.New(id, opts)
	w.putNetwork(n)
	return n
}

// AddTCPNetwork creates a loopback-TCP network.
func (w *World) AddTCPNetwork(id string) *tcpnet.Net {
	n := tcpnet.New(id)
	w.putNetwork(n)
	return n
}

// AddMBXNetwork creates an Apollo-MBX-style mailbox network.
func (w *World) AddMBXNetwork(id string, opts mbx.Options) *mbx.Registry {
	n := mbx.New(id, opts)
	w.putNetwork(n)
	return n
}

func (w *World) putNetwork(n ipcs.Network) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.networks[n.ID()] = n
}

// SetCoalesceWrites toggles the ND-Layer group-commit writer for every
// module attached afterwards (gateways and name servers included).
// Already-attached modules are unaffected.
func (w *World) SetCoalesceWrites(on bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.coalesce = on
}

func (w *World) coalesceWrites() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.coalesce
}

// Network returns a previously added network.
func (w *World) Network(id string) (ipcs.Network, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, ok := w.networks[id]
	return n, ok
}

// AddHost creates a simulated machine attached to the named networks.
func (w *World) AddHost(name string, m machine.Type, networkIDs ...string) (*Host, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.hosts[name]; dup {
		return nil, fmt.Errorf("sim: host %q already exists", name)
	}
	h := &Host{Name: name, Machine: m}
	for _, id := range networkIDs {
		n, ok := w.networks[id]
		if !ok {
			return nil, fmt.Errorf("sim: no network %q", id)
		}
		h.Networks = append(h.Networks, n)
	}
	if len(h.Networks) == 0 {
		return nil, errors.New("sim: host needs at least one network")
	}
	w.hosts[name] = h
	return h, nil
}

// MustHost is AddHost for test and example setup code.
func (w *World) MustHost(name string, m machine.Type, networkIDs ...string) *Host {
	h, err := w.AddHost(name, m, networkIDs...)
	if err != nil {
		panic(err)
	}
	return h
}

// WellKnown returns the current well-known preload every subsequently
// attached module receives.
func (w *World) WellKnown() addr.WellKnown {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.wellKnown
}

// hints builds unique endpoint hints appropriate to each network type.
func (w *World) hints(h *Host, moduleName string) map[string]string {
	w.mu.Lock()
	w.hintSeq++
	seq := w.hintSeq
	w.mu.Unlock()
	hints := make(map[string]string, len(h.Networks))
	for _, n := range h.Networks {
		switch n.(type) {
		case *mbx.Registry:
			hints[n.ID()] = fmt.Sprintf("/nodes/%s/%s.%d", h.Name, moduleName, seq)
		case *tcpnet.Net:
			hints[n.ID()] = "" // ephemeral port
		default:
			hints[n.ID()] = fmt.Sprintf("%s.%s.%d", h.Name, moduleName, seq)
		}
	}
	return hints
}

func (w *World) track(m *core.Module) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.modules = append(w.modules, m)
}

// Modules returns every module the world has started, in start order.
func (w *World) Modules() []*core.Module {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]*core.Module(nil), w.modules...)
}

// Snapshots returns a point-in-time metrics snapshot per tracked module.
func (w *World) Snapshots() []stats.Snapshot {
	mods := w.Modules()
	out := make([]stats.Snapshot, 0, len(mods))
	for _, m := range mods {
		out = append(out, m.Stats().Snapshot())
	}
	return out
}

// StatsTotals merges every tracked module's counters and gauges into one
// world-wide snapshot: the aggregate the chaos reports diff per episode.
func (w *World) StatsTotals() stats.Snapshot {
	total := stats.Snapshot{
		Module:   "world",
		Counters: map[string]uint64{},
		Gauges:   map[string]int64{},
	}
	for _, s := range w.Snapshots() {
		for name, v := range s.Counters {
			total.Counters[name] += v
		}
		for name, v := range s.Gauges {
			total.Gauges[name] += v
		}
	}
	return total
}

// SetNameServerTuning configures anti-entropy and tombstone GC for name
// servers started afterwards (zero leaves each loop off).
func (w *World) SetNameServerTuning(antiEntropy, tombstoneTTL time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nsAntiEntropy = antiEntropy
	w.nsTombstoneTTL = tombstoneTTL
}

// StartNameServer boots a Name Server replica in shard group 0: the
// unsharded configuration every pre-shard test uses.
func (w *World) StartNameServer(h *Host, name string) (*core.Module, error) {
	return w.StartNameServerShard(h, name, 0)
}

// StartNameServerShard boots a Name Server replica in the given shard
// group and adds it to the well-known preload. The namespace is
// hash-partitioned across shard groups; each group is internally
// replicated (at most three replicas: primary + two). Modules attached
// after all servers are up see the full shard map.
func (w *World) StartNameServerShard(h *Host, name string, shard int) (*core.Module, error) {
	w.mu.Lock()
	if shard < 0 {
		w.mu.Unlock()
		return nil, fmt.Errorf("sim: negative shard %d", shard)
	}
	if w.nextNS > int(addr.NameServerLimit-addr.NameServer) {
		w.mu.Unlock()
		return nil, errors.New("sim: well-known name server addresses exhausted")
	}
	inGroup := 0
	for _, e := range w.wellKnown.NameServers {
		if e.Shard == shard {
			inGroup++
		}
	}
	if inGroup >= 3 {
		w.mu.Unlock()
		return nil, fmt.Errorf("sim: shard %d already has three replicas (primary + two)", shard)
	}
	uadd := addr.NameServer + addr.UAdd(w.nextNS)
	serverID := uint16(w.nextNS + 1)
	w.nextNS++
	wk := w.wellKnown
	antiEntropy, tombTTL := w.nsAntiEntropy, w.nsTombstoneTTL
	w.mu.Unlock()

	m, err := core.Attach(core.Config{
		Name:           name,
		Machine:        h.Machine,
		Networks:       h.Networks,
		EndpointHints:  w.hints(h, name),
		WellKnown:      wk,
		Kind:           core.KindNameServer,
		FixedUAdd:      uadd,
		ServerID:       serverID,
		CoalesceWrites: w.coalesceWrites(),
		NSAntiEntropy:  antiEntropy,
		NSTombstoneTTL: tombTTL,
	})
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.wellKnown.NameServers = append(w.wellKnown.NameServers, addr.WellKnownEntry{
		Name: name, UAdd: uadd, Endpoints: m.Endpoints(), Shard: shard, ServerID: serverID,
	})
	w.nameServers = append(w.nameServers, m)
	w.nsShards = append(w.nsShards, shard)
	servers := append([]*core.Module(nil), w.nameServers...)
	shards := append([]int(nil), w.nsShards...)
	w.mu.Unlock()
	w.track(m)

	// Wire the replicated configuration (§7: "the latter will be
	// replicated for failure resiliency"): every server knows every
	// other server's record (so its Nucleus can reach any peer), but
	// writes propagate only within the shard group — the namespace
	// partition is the point, and cross-shard replication would undo it.
	// A client rotating to a replica after its group's primary dies sees
	// the records registered through the primary.
	for i, s := range servers {
		var peers []addr.UAdd
		for j, o := range servers {
			if o == s {
				continue
			}
			s.DB().Insert(nameserver.Record{
				Name: o.Name(), UAdd: o.UAdd(), Endpoints: o.Endpoints(),
				Attrs: map[string]string{"type": "nameserver"}, Alive: true,
			})
			if shards[i] == shards[j] {
				peers = append(peers, o.UAdd())
			}
		}
		s.SetNameServerReplicas(peers)
	}
	return m, nil
}

// StartGateway boots a prime gateway joining the host's networks and adds
// it to the well-known preload (§3.4: prime gateways are preloaded; other
// gateways are located through the naming service).
func (w *World) StartGateway(h *Host, name string) (*core.Module, error) {
	if len(h.Networks) < 2 {
		return nil, fmt.Errorf("sim: gateway host %q must join at least two networks", h.Name)
	}
	w.mu.Lock()
	if w.nextGW > addr.PrimeGatewayLimit {
		w.mu.Unlock()
		return nil, errors.New("sim: prime gateway addresses exhausted")
	}
	uadd := w.nextGW
	w.nextGW++
	wk := w.wellKnown
	w.mu.Unlock()

	m, err := core.Attach(core.Config{
		Name:           name,
		Machine:        h.Machine,
		Networks:       h.Networks,
		EndpointHints:  w.hints(h, name),
		WellKnown:      wk,
		Kind:           core.KindGateway,
		FixedUAdd:      uadd,
		CoalesceWrites: w.coalesceWrites(),
	})
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.wellKnown.Gateways = append(w.wellKnown.Gateways, addr.WellKnownEntry{
		Name: name, UAdd: uadd, Endpoints: m.Endpoints(),
	})
	w.mu.Unlock()
	w.track(m)
	return m, nil
}

// StartOrdinaryGateway boots a non-prime gateway: reachable only through
// naming-service topology, never preloaded.
func (w *World) StartOrdinaryGateway(h *Host, name string) (*core.Module, error) {
	if len(h.Networks) < 2 {
		return nil, fmt.Errorf("sim: gateway host %q must join at least two networks", h.Name)
	}
	m, err := core.Attach(core.Config{
		Name:           name,
		Machine:        h.Machine,
		Networks:       h.Networks,
		EndpointHints:  w.hints(h, name),
		WellKnown:      w.WellKnown(),
		Kind:           core.KindGateway,
		CoalesceWrites: w.coalesceWrites(),
	})
	if err != nil {
		return nil, err
	}
	w.track(m)
	return m, nil
}

// Attach binds an application module to the NTCS on the given host.
func (w *World) Attach(h *Host, name string, attrs map[string]string) (*core.Module, error) {
	m, err := core.Attach(core.Config{
		Name:           name,
		Attrs:          attrs,
		Machine:        h.Machine,
		Networks:       h.Networks,
		EndpointHints:  w.hints(h, name),
		WellKnown:      w.WellKnown(),
		CoalesceWrites: w.coalesceWrites(),
	})
	if err != nil {
		return nil, err
	}
	w.track(m)
	return m, nil
}

// AttachConfig attaches with full control over the module configuration;
// networks, hints and well-known preload are filled from the host unless
// already set.
func (w *World) AttachConfig(h *Host, cfg core.Config) (*core.Module, error) {
	if len(cfg.Networks) == 0 {
		cfg.Networks = h.Networks
	}
	if cfg.EndpointHints == nil {
		cfg.EndpointHints = w.hints(h, cfg.Name)
	}
	if len(cfg.WellKnown.NameServers) == 0 && len(cfg.WellKnown.Gateways) == 0 {
		cfg.WellKnown = w.WellKnown()
	}
	if cfg.Machine == machine.Unknown {
		cfg.Machine = h.Machine
	}
	cfg.CoalesceWrites = cfg.CoalesceWrites || w.coalesceWrites()
	m, err := core.Attach(cfg)
	if err != nil {
		return nil, err
	}
	w.track(m)
	return m, nil
}

// Close detaches every module, newest first.
func (w *World) Close() {
	w.mu.Lock()
	mods := w.modules
	w.modules = nil
	w.mu.Unlock()
	for i := len(mods) - 1; i >= 0; i-- {
		_ = mods[i].Detach()
	}
}
