package sim

import (
	"strings"
	"testing"

	"ntcs/internal/ipcs/mbx"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
)

func TestWorldBuilding(t *testing.T) {
	w := NewWorld()
	w.AddNetwork("a", memnet.Options{})
	w.AddTCPNetwork("b")
	w.AddMBXNetwork("c", mbx.Options{})
	for _, id := range []string{"a", "b", "c"} {
		if _, ok := w.Network(id); !ok {
			t.Errorf("network %q missing", id)
		}
	}
	if _, ok := w.Network("nope"); ok {
		t.Error("unknown network found")
	}

	h, err := w.AddHost("h1", machine.VAX, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.NetworkIDs(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("NetworkIDs = %v", got)
	}
	if _, err := w.AddHost("h1", machine.VAX, "a"); err == nil {
		t.Error("duplicate host should fail")
	}
	if _, err := w.AddHost("h2", machine.VAX, "nope"); err == nil {
		t.Error("unknown network should fail")
	}
	if _, err := w.AddHost("h3", machine.VAX); err == nil {
		t.Error("host without networks should fail")
	}
}

func TestMustHostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHost should panic on error")
		}
	}()
	w := NewWorld()
	w.MustHost("h", machine.VAX, "missing")
}

func TestGatewayNeedsTwoNetworks(t *testing.T) {
	w := NewWorld()
	w.AddNetwork("a", memnet.Options{})
	h := w.MustHost("h", machine.VAX, "a")
	if _, err := w.StartGateway(h, "gw"); err == nil {
		t.Error("single-network gateway should fail")
	}
	if _, err := w.StartOrdinaryGateway(h, "gw"); err == nil {
		t.Error("single-network ordinary gateway should fail")
	}
}

func TestEndpointHintsPerNetworkType(t *testing.T) {
	w := NewWorld()
	w.AddNetwork("mem", memnet.Options{})
	w.AddTCPNetwork("tcp")
	w.AddMBXNetwork("mbx", mbx.Options{})
	h := w.MustHost("node7", machine.Apollo, "mem", "tcp", "mbx")
	hints := w.hints(h, "searcher")
	if !strings.HasPrefix(hints["mbx"], "/nodes/node7/") {
		t.Errorf("mbx hint = %q, want pathname", hints["mbx"])
	}
	if hints["tcp"] != "" {
		t.Errorf("tcp hint = %q, want ephemeral", hints["tcp"])
	}
	if !strings.Contains(hints["mem"], "searcher") {
		t.Errorf("mem hint = %q", hints["mem"])
	}
	// Hints are unique across calls (relocation reuses logical names).
	h2 := w.hints(h, "searcher")
	if h2["mem"] == hints["mem"] {
		t.Error("hints must be unique per attachment")
	}
}

func TestNameServerLimit(t *testing.T) {
	w := NewWorld()
	w.AddNetwork("a", memnet.Options{})
	h := w.MustHost("h", machine.Apollo, "a")
	defer w.Close()
	for i := 0; i < 3; i++ {
		if _, err := w.StartNameServer(h, "ns"+string(rune('0'+i))); err != nil {
			t.Fatalf("ns %d: %v", i, err)
		}
	}
	if _, err := w.StartNameServer(h, "ns3"); err == nil {
		t.Error("fourth name server should be rejected")
	}
	wk := w.WellKnown()
	if len(wk.NameServers) != 3 {
		t.Errorf("well-known name servers = %d", len(wk.NameServers))
	}
}

func TestCloseDetachesEverything(t *testing.T) {
	w := NewWorld()
	w.AddNetwork("a", memnet.Options{})
	h := w.MustHost("h", machine.Apollo, "a")
	if _, err := w.StartNameServer(h, "ns"); err != nil {
		t.Fatal(err)
	}
	m, err := w.Attach(h, "m", nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := m.Send(m.UAdd(), "t", "x"); err == nil {
		t.Error("module should be detached after world close")
	}
	w.Close() // idempotent
}
