package ntcs_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ntcs/internal/core"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/sim"
)

// TestPerSenderFIFOAcrossGateway pushes the ordering guarantee through
// every PR-4 fast path at once: coalesced (group-commit) writes on the
// senders, the zero-copy cut-through relay at the gateway, and sharded
// inbound dispatch at the receiver. Eight senders each stream numbered
// messages across the gateway; the receiver must observe every stream in
// its original order, with the cut-through actually engaged.
func TestPerSenderFIFOAcrossGateway(t *testing.T) {
	w := sim.NewWorld()
	w.SetCoalesceWrites(true)
	w.AddNetwork("alpha", memnet.Options{})
	w.AddNetwork("beta", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "alpha")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	gwHost := w.MustHost("gw-host", machine.Apollo, "alpha", "beta")
	if _, err := w.StartGateway(gwHost, "gw-ab"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	const senders, perSender = 8, 200

	// DispatchWorkers is explicit: the adaptive default falls back to
	// inline delivery on a single-CPU box, which would leave the sharded
	// path untested.
	rHost := w.MustHost("recv-host", machine.VAX, "beta")
	recv, err := w.AttachConfig(rHost, core.Config{
		Name:            "fifo-receiver",
		InboxSize:       senders * perSender,
		DispatchWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		host := w.MustHost(fmt.Sprintf("send-host-%d", s), machine.VAX, "alpha")
		mod, err := w.Attach(host, fmt.Sprintf("fifo-sender-%d", s), nil)
		if err != nil {
			t.Fatal(err)
		}
		u, err := mod.Locate("fifo-receiver")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				body := []byte(fmt.Sprintf("s%02d-%06d", s, i))
				if err := mod.Send(u, "seq", body); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
			}
		}(s)
	}

	// Drain with a single consumer so the observed order is exactly the
	// delivery order; cross-sender interleaving is free, per-sender
	// reordering is the bug.
	next := make([]int, senders)
	for got := 0; got < senders*perSender; got++ {
		d, err := recv.Recv(10 * time.Second)
		if err != nil {
			t.Fatalf("after %d deliveries: %v", got, err)
		}
		var body []byte
		if err := d.Decode(&body); err != nil {
			t.Fatal(err)
		}
		var s, i int
		if _, err := fmt.Sscanf(string(body), "s%02d-%06d", &s, &i); err != nil {
			t.Fatalf("unexpected body %q", body)
		}
		if i != next[s] {
			t.Fatalf("sender %d: message %d delivered, want %d (per-sender FIFO broken)", s, i, next[s])
		}
		next[s]++
	}
	wg.Wait()

	// Every frame crossed the gateway; the in-place relay must have
	// carried them.
	tot := w.StatsTotals()
	if ct := tot.Counters["ip.cutthrough"]; ct == 0 {
		t.Fatalf("ip.cutthrough = 0; gateway relayed %d frames without the zero-copy path", tot.Counters["ip.relays"])
	}
}

// TestPerSenderFIFOUnderBackpressure runs the ordering guarantee through
// a credit famine: several senders stream numbered messages at a receiver
// whose circuit windows are small, and mid-stream the receiver's
// admission valve is throttled so every sender exhausts its credit and
// blocks. When the valve reopens the blocked sends complete, and the
// receiver must still observe every stream in its original order —
// backpressure may delay a sender, never reorder one.
func TestPerSenderFIFOUnderBackpressure(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	const senders, perSender, window = 4, 100, 8
	recv, err := w.AttachConfig(w.MustHost("recv-host", machine.VAX, "ring"), core.Config{
		Name:         "bp-fifo-receiver",
		CreditWindow: window,
		InboxSize:    senders * perSender,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		host := w.MustHost(fmt.Sprintf("bp-send-host-%d", s), machine.VAX, "ring")
		mod, err := w.AttachConfig(host, core.Config{
			Name: fmt.Sprintf("bp-fifo-sender-%d", s),
			// Long enough to ride out the famine: sends block, not fail.
			CreditWaitMax: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		u, err := mod.Locate("bp-fifo-receiver")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				body := []byte(fmt.Sprintf("s%02d-%06d", s, i))
				if err := mod.Send(u, "seq", body); err != nil {
					t.Errorf("sender %d message %d: %v", s, i, err)
					return
				}
			}
		}(s)
	}

	// Let the streams get going, then starve them of credit mid-flight and
	// heal shortly after. Window 8 against a 0.5 grants/sec trickle stalls
	// every sender almost immediately.
	time.Sleep(20 * time.Millisecond)
	recv.SetAdmissionRate(0.5)
	time.Sleep(300 * time.Millisecond)
	recv.SetAdmissionRate(0)

	next := make([]int, senders)
	for got := 0; got < senders*perSender; got++ {
		d, err := recv.Recv(30 * time.Second)
		if err != nil {
			t.Fatalf("after %d deliveries: %v", got, err)
		}
		var body []byte
		if err := d.Decode(&body); err != nil {
			t.Fatal(err)
		}
		var s, i int
		if _, err := fmt.Sscanf(string(body), "s%02d-%06d", &s, &i); err != nil {
			t.Fatalf("unexpected body %q", body)
		}
		if i != next[s] {
			t.Fatalf("sender %d: message %d delivered, want %d (FIFO broken across the credit famine)", s, i, next[s])
		}
		next[s]++
	}
	wg.Wait()

	// The famine must actually have bitten: senders parked waiting for
	// credit at least once.
	if tot := w.StatsTotals(); tot.Counters["nd.backpressure.waits"] == 0 {
		t.Error("nd.backpressure.waits = 0: no sender ever blocked on credit, the episode tested nothing")
	}
}

// TestSendBytesMatchesSend: the unboxed byte-payload entry point is
// observably identical to Send with a []byte body.
func TestSendBytesMatchesSend(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	recv, err := w.Attach(w.MustHost("sun-h", machine.Sun68K, "ring"), "bytes-recv", nil)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := w.Attach(w.MustHost("vax-h", machine.VAX, "ring"), "bytes-send", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sender.Locate("bytes-recv")
	if err != nil {
		t.Fatal(err)
	}

	payload := []byte("opaque \x00 payload")
	if err := sender.Send(u, "blob", payload); err != nil {
		t.Fatal(err)
	}
	if err := sender.SendBytes(u, "blob", payload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		d, err := recv.Recv(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if d.Type != "blob" {
			t.Errorf("delivery %d: Type = %q", i, d.Type)
		}
		var got []byte
		if err := d.Decode(&got); err != nil {
			t.Fatal(err)
		}
		if string(got) != string(payload) {
			t.Errorf("delivery %d: body = %q, want %q", i, got, payload)
		}
	}
}
