// The warm-path allocation budget, enforced as a plain test so CI fails
// the moment metering (or anything else) sneaks an allocation into the
// hot path. Excluded under the race detector: -race instruments
// allocation behaviour and the budget would measure the instrumentation.

//go:build !race

package ntcs_test

import (
	"testing"
	"time"

	"ntcs/internal/drts/monitor"
	"ntcs/internal/drts/timesvc"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/sim"
)

// warmSendAllocBudget is the PR1 baseline: 9 allocs per warm send with
// the monitor hook and corrected clock attached. The observability layer
// (counters on every layer, span IDs in every header) must not move it.
const warmSendAllocBudget = 9

func TestWarmSendAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc budget skipped in -short mode")
	}
	res := testing.Benchmark(func(b *testing.B) {
		w := sim.NewWorld()
		w.AddNetwork("net", memnet.Options{})
		if _, err := w.StartNameServer(w.MustHost("ns-host", machine.Apollo, "net"), "ns"); err != nil {
			b.Fatal(err)
		}
		host := w.MustHost("vax-1", machine.VAX, "net")
		tsMod, err := w.Attach(host, "time-server", nil)
		if err != nil {
			b.Fatal(err)
		}
		go timesvc.NewServer(tsMod, 0).Run()
		monMod, err := w.Attach(host, "monitor", nil)
		if err != nil {
			b.Fatal(err)
		}
		go monitor.NewServer(monMod).Run()
		recv, err := w.Attach(host, "receiver", nil)
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			for {
				if _, err := recv.Recv(time.Hour); err != nil {
					return
				}
			}
		}()
		sender, err := w.Attach(host, "sender", nil)
		if err != nil {
			b.Fatal(err)
		}
		corr := timesvc.NewCorrector(sender, "time-server", time.Hour)
		sender.SetClock(corr.Now)
		sender.SetMonitor(monitor.NewClient(sender, "monitor", 64).Record)
		u, err := sender.Locate("receiver")
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		if err := sender.Send(u, "m", "warmup"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sender.Send(u, "m", "warm"); err != nil {
				b.Fatal(err)
			}
		}
	})
	allocs := res.AllocsPerOp()
	t.Logf("warm send: %v/op, %d B/op, %d allocs/op (budget %d)",
		time.Duration(res.NsPerOp()), res.AllocedBytesPerOp(), allocs, warmSendAllocBudget)
	if allocs > warmSendAllocBudget {
		t.Errorf("warm send costs %d allocs/op with counters on; budget is %d", allocs, warmSendAllocBudget)
	}
}
