GO ?= go

.PHONY: all build test race vet verify verify-race bench bench-thru bench-pack bench-scale bench-names bench-serve serve-gate scale-gate memprofile soak soak-proc proc-gate fuzz-smoke

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the pre-merge gate: static checks, a full build, and the
# complete suite under the race detector.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# verify-race is the race suite alone (verify already includes it).
verify-race:
	$(GO) test -race ./...

# bench reruns the warm-path series recorded in BENCH_PR1.json.
bench:
	$(GO) test . -run XXX -bench 'FirstSendVsWarmSend|WarmSendParallel|ResolutionCache' -benchmem

# bench-thru reruns the PR-4 throughput series (pipelined msgs/sec and
# the gateway-hop round trip) recorded in BENCH_PR4.json.
bench-thru:
	$(GO) test . -run XXX -bench 'ThroughputPipelined|GatewayCutThrough' -benchmem

# bench-pack reruns the PR-5 compiled-codec series (per-type conversion
# plans vs the reflect walk, and the differing-machine-type end-to-end
# call) recorded in BENCH_PR5.json.
bench-pack:
	$(GO) test ./internal/pack -run XXX -bench 'PackedConvert' -benchmem
	$(GO) test . -run XXX -bench 'CrossMachineCall' -benchmem

# bench-scale runs the circuit-scale series: the PR-6 100k-endpoint
# benchmark (BENCH_PR6.json) and the PR-9 C1M benchmark — 1001 fully
# meshed ND bindings holding 1,001,000 live LVC endpoints in one
# process under a 400 B/endpoint heap gate, rewriting BENCH_PR9.json
# with before/after bytes-per-endpoint from the same run. Gated behind
# NTCS_SCALE so `make test` stays fast.
bench-scale:
	NTCS_SCALE=1 $(GO) test ./internal/ndlayer -run 'TestScale100kCircuits|TestScale1MEndpoints' -count=1 -v -timeout 30m

# bench-names runs the PR-7 million-name benchmark and rewrites
# BENCH_PR7.json with the measured numbers: one million names
# hash-partitioned across four shard groups, resolved through the full
# NSP path (lease cache, shard routing, LCM call, server dispatch).
# Gated behind NTCS_SCALE so `make test` stays fast.
bench-names:
	NTCS_SCALE=1 $(GO) test . -run TestScaleMillionNames -count=1 -v

# bench-serve runs the PR-10 open-loop serving benchmark and rewrites
# BENCH_PR10.json: Poisson users query sharded URSA backends behind a
# gateway over real tcpnet, swept to saturation twice in the same
# process — once with the poller pinned to a single shard, once with
# the default fd-hashed shards — plus coordinated-omission-free
# p50/p99/p999 at a fixed sub-saturation load. Gated behind NTCS_SCALE
# so `make test` stays fast. The sharded/single ratio only exceeds 1 on
# a multi-core machine (shards share one core otherwise).
bench-serve:
	NTCS_SCALE=1 $(GO) test ./internal/experiments -run TestBenchServe -count=1 -v -timeout 30m

# serve-gate is the CI slice of the serving bench: a short open-loop
# window with the poller pinned to 2 shards must complete queries with
# zero corrupted replies and every poller shard dispatching, under the
# race detector.
serve-gate:
	$(GO) test ./internal/experiments -run TestServeGate -race -count=1 -v

# scale-gate is the cheap CI form of the scale claims: thousands of idle
# circuits must fit under a flat goroutine budget AND a flat per-endpoint
# heap budget, a hot circuit must not starve a thousand cold ones, and
# divergent name-server replicas must reconverge through anti-entropy
# alone. The heap gate must run without -race (shadow memory distorts
# heap accounting; the test skips itself under the race detector).
scale-gate:
	$(GO) test ./internal/ndlayer -run 'TestIdleCircuitGoroutineBudget|TestEndpointHeapBudget|TestHotSenderDoesNotStarveIdleCircuits' -count=1 -v
	NTCS_SCALE=1 $(GO) test . -run TestConvergenceSoak -count=1 -v

# memprofile captures a heap profile of the live 100k-endpoint mesh and
# prints the top inuse_space sites — the tool that keeps the per-endpoint
# byte ledger in DESIGN.md §14 honest. The profile is dumped mid-test via
# NTCS_MEMPROFILE (the -memprofile flag would write after test cleanup
# has torn the mesh down, capturing an empty heap).
memprofile:
	NTCS_SCALE=1 NTCS_MEMPROFILE=$(CURDIR)/mem.out $(GO) test ./internal/ndlayer -run TestScale100kCircuits -count=1 -v -timeout 30m
	$(GO) tool pprof -top -nodecount=10 -sample_index=inuse_space mem.out

# soak runs the chaos schedule under the race detector with a fixed seed
# so a failure reproduces. Override the seed: make soak NTCS_CHAOS_SEED=7
NTCS_CHAOS_SEED ?= 42
soak:
	NTCS_CHAOS_SEED=$(NTCS_CHAOS_SEED) $(GO) test . -run TestChaosSoak -race -count=1 -v

# soak-proc runs the real multi-process kill -9 gauntlet (ROADMAP item
# 3): separate OS processes over real TCP, SIGKILL of the prime gateway,
# a name-server replica and the worker, a rolling relocation and a
# SIGTERM drain — all under load, all under the race detector, recovery
# asserted from each process's scraped /stats.json. Stretch the waits on
# a slow machine: make soak-proc NTCS_PROC_WAIT_MS=60000
soak-proc:
	NTCS_PROC_SOAK=1 NTCS_PROC_RACE=1 $(GO) test ./internal/proctest -run TestProcSoak -race -count=1 -v

# proc-gate is the CI slice of the multi-process harness: the real-process
# smoke boot, the SIGTERM drain contract for every binary kind, and one
# kill -9 episode, under the race detector.
proc-gate:
	NTCS_PROC_RACE=1 $(GO) test ./internal/proctest -race -count=1 -v

# fuzz-smoke runs each wire-facing fuzz target briefly — CI's crash
# detector, not a coverage hunt. Override: make fuzz-smoke FUZZTIME=2m
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/wire -run '^FuzzHeaderDecode$$' -fuzz '^FuzzHeaderDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pack -run '^FuzzPackRoundTrip$$' -fuzz '^FuzzPackRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pack -run '^FuzzCodecEquivalence$$' -fuzz '^FuzzCodecEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/nsp -run '^FuzzNSPRecord$$' -fuzz '^FuzzNSPRecord$$' -fuzztime $(FUZZTIME)
