GO ?= go

.PHONY: all build test race vet verify bench

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the pre-merge gate: static checks, a full build, and the
# complete suite under the race detector.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# bench reruns the warm-path series recorded in BENCH_PR1.json.
bench:
	$(GO) test . -run XXX -bench 'FirstSendVsWarmSend|WarmSendParallel|ResolutionCache' -benchmem
