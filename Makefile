GO ?= go

.PHONY: all build test race vet verify verify-race bench bench-thru bench-pack bench-scale bench-names scale-gate soak soak-proc proc-gate fuzz-smoke

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify is the pre-merge gate: static checks, a full build, and the
# complete suite under the race detector.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

# verify-race is the race suite alone (verify already includes it).
verify-race:
	$(GO) test -race ./...

# bench reruns the warm-path series recorded in BENCH_PR1.json.
bench:
	$(GO) test . -run XXX -bench 'FirstSendVsWarmSend|WarmSendParallel|ResolutionCache' -benchmem

# bench-thru reruns the PR-4 throughput series (pipelined msgs/sec and
# the gateway-hop round trip) recorded in BENCH_PR4.json.
bench-thru:
	$(GO) test . -run XXX -bench 'ThroughputPipelined|GatewayCutThrough' -benchmem

# bench-pack reruns the PR-5 compiled-codec series (per-type conversion
# plans vs the reflect walk, and the differing-machine-type end-to-end
# call) recorded in BENCH_PR5.json.
bench-pack:
	$(GO) test ./internal/pack -run XXX -bench 'PackedConvert' -benchmem
	$(GO) test . -run XXX -bench 'CrossMachineCall' -benchmem

# bench-scale runs the PR-6 circuit-scale benchmark recorded in
# BENCH_PR6.json: ~320 fully meshed ND bindings holding >100k live LVC
# endpoints in one process, reporting goroutine count and heap per
# circuit. Gated behind NTCS_SCALE so `make test` stays fast.
bench-scale:
	NTCS_SCALE=1 $(GO) test ./internal/ndlayer -run TestScale100kCircuits -count=1 -v

# bench-names runs the PR-7 million-name benchmark and rewrites
# BENCH_PR7.json with the measured numbers: one million names
# hash-partitioned across four shard groups, resolved through the full
# NSP path (lease cache, shard routing, LCM call, server dispatch).
# Gated behind NTCS_SCALE so `make test` stays fast.
bench-names:
	NTCS_SCALE=1 $(GO) test . -run TestScaleMillionNames -count=1 -v

# scale-gate is the cheap CI form of the scale claims: thousands of idle
# circuits must fit under a flat goroutine budget, a hot circuit must not
# starve a thousand cold ones, and divergent name-server replicas must
# reconverge through anti-entropy alone.
scale-gate:
	$(GO) test ./internal/ndlayer -run 'TestIdleCircuitGoroutineBudget|TestHotSenderDoesNotStarveIdleCircuits' -count=1 -v
	NTCS_SCALE=1 $(GO) test . -run TestConvergenceSoak -count=1 -v

# soak runs the chaos schedule under the race detector with a fixed seed
# so a failure reproduces. Override the seed: make soak NTCS_CHAOS_SEED=7
NTCS_CHAOS_SEED ?= 42
soak:
	NTCS_CHAOS_SEED=$(NTCS_CHAOS_SEED) $(GO) test . -run TestChaosSoak -race -count=1 -v

# soak-proc runs the real multi-process kill -9 gauntlet (ROADMAP item
# 3): separate OS processes over real TCP, SIGKILL of the prime gateway,
# a name-server replica and the worker, a rolling relocation and a
# SIGTERM drain — all under load, all under the race detector, recovery
# asserted from each process's scraped /stats.json. Stretch the waits on
# a slow machine: make soak-proc NTCS_PROC_WAIT_MS=60000
soak-proc:
	NTCS_PROC_SOAK=1 NTCS_PROC_RACE=1 $(GO) test ./internal/proctest -run TestProcSoak -race -count=1 -v

# proc-gate is the CI slice of the multi-process harness: the real-process
# smoke boot, the SIGTERM drain contract for every binary kind, and one
# kill -9 episode, under the race detector.
proc-gate:
	NTCS_PROC_RACE=1 $(GO) test ./internal/proctest -race -count=1 -v

# fuzz-smoke runs each wire-facing fuzz target briefly — CI's crash
# detector, not a coverage hunt. Override: make fuzz-smoke FUZZTIME=2m
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/wire -run '^FuzzHeaderDecode$$' -fuzz '^FuzzHeaderDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pack -run '^FuzzPackRoundTrip$$' -fuzz '^FuzzPackRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/pack -run '^FuzzCodecEquivalence$$' -fuzz '^FuzzCodecEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/nsp -run '^FuzzNSPRecord$$' -fuzz '^FuzzNSPRecord$$' -fuzztime $(FUZZTIME)
