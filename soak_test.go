package ntcs_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ntcs"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/sim"
)

// soakDuration returns def unless NTCS_SOAK_MS overrides it — CI can
// shorten the soak, a bug hunt can stretch it, and the default stays
// what it always was.
func soakDuration(def time.Duration) time.Duration {
	if s := os.Getenv("NTCS_SOAK_MS"); s != "" {
		if ms, err := strconv.Atoi(s); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return def
}

// pollUntil polls cond every 10ms until it holds or the deadline
// passes. Fixed sleeps made the soaks flake on loaded machines; polling
// on observed progress is both faster on fast boxes and tolerant on
// slow ones.
func pollUntil(deadline time.Duration, cond func() bool) bool {
	d := time.Now().Add(deadline)
	for time.Now().Before(d) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return cond()
}

// TestRelocationAcrossGateway relocates a module that lives behind a
// gateway: the naming service's liveness probe must traverse the chain,
// observe the final-hop failure (conclusive death), and forward to the
// replacement — all across networks.
func TestRelocationAcrossGateway(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("alpha", memnet.Options{})
	w.AddNetwork("beta", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "alpha")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	gwHost := w.MustHost("gw-host", machine.Apollo, "alpha", "beta")
	if _, err := w.StartGateway(gwHost, "gw"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	beta1 := w.MustHost("beta-1", machine.VAX, "beta")
	beta2 := w.MustHost("beta-2", machine.Sun68K, "beta")
	gen1, err := w.Attach(beta1, "worker", map[string]string{"role": "work"})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(gen1)

	client, err := w.Attach(w.MustHost("alpha-1", machine.VAX, "alpha"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("worker")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "one", &reply); err != nil {
		t.Fatal(err)
	}

	// Relocate within beta; the client (on alpha) keeps the old address.
	if err := gen1.Detach(); err != nil {
		t.Fatal(err)
	}
	gen2, err := w.Attach(beta2, "worker", map[string]string{"role": "work"})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(gen2)

	deadline := time.Now().Add(5 * time.Second)
	var callErr error
	for time.Now().Before(deadline) {
		callErr = client.Call(u, "q", "two", &reply)
		if callErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if callErr != nil {
		t.Fatalf("call after cross-gateway relocation: %v", callErr)
	}
	if reply != "echo:two" {
		t.Errorf("reply = %q", reply)
	}
}

// TestSoakMixedTraffic runs a small URSA-flavoured world under
// concurrent mixed traffic — calls, async sends, relocations — and
// verifies nothing wedges and the overwhelming majority of operations
// succeed.
func TestSoakMixedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	w := sim.NewWorld()
	w.AddNetwork("alpha", memnet.Options{})
	w.AddNetwork("beta", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "alpha")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	gwHost := w.MustHost("gw-host", machine.Apollo, "alpha", "beta")
	if _, err := w.StartGateway(gwHost, "gw"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	// Six echo servers spread over both networks and machine types.
	machines := []machine.Type{machine.VAX, machine.Sun68K, machine.Apollo}
	nets := []string{"alpha", "beta"}
	serverNames := make([]string, 6)
	for i := range serverNames {
		name := fmt.Sprintf("server-%d", i)
		serverNames[i] = name
		host := w.MustHost(fmt.Sprintf("shost-%d", i), machines[i%3], nets[i%2])
		m, err := w.AttachConfig(host, ntcs.Config{
			Name: name, Attrs: map[string]string{"role": "echo"}, InboxSize: 2048,
		})
		if err != nil {
			t.Fatal(err)
		}
		echoServe(m)
	}

	// One of them will be relocated mid-soak.
	relocHost := w.MustHost("reloc-host", machine.Pyramid, "beta")

	var (
		calls, callErrs atomic.Int64
		stop            = make(chan struct{})
		wg              sync.WaitGroup
	)
	for c := 0; c < 6; c++ {
		host := w.MustHost(fmt.Sprintf("chost-%d", c), machines[c%3], nets[c%2])
		mod, err := w.Attach(host, fmt.Sprintf("soaker-%d", c), nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(c)))
		targets := make([]ntcs.UAdd, len(serverNames))
		for i, name := range serverNames {
			u, err := mod.Locate(name)
			if err != nil {
				t.Fatal(err)
			}
			targets[i] = u
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := targets[rng.Intn(len(targets))]
				msg := fmt.Sprintf("s%d-%d", c, i)
				var reply string
				calls.Add(1)
				if err := mod.Call(u, "q", msg, &reply); err != nil {
					callErrs.Add(1)
					continue
				}
				if reply != "echo:"+msg {
					t.Errorf("soaker %d: reply %q", c, reply)
					return
				}
			}
		}(c)
	}

	// Mid-soak: a newer incarnation of server-3 comes up on another
	// machine (the "module replacement and upgrade" of §1.3). The old one
	// keeps serving its existing circuits; fresh resolutions find the new
	// one — both generations answer correctly throughout. Gate the
	// replacement on observed traffic, not wall clock: the point is that
	// it happens mid-soak.
	if !pollUntil(10*time.Second, func() bool { return calls.Load() >= 150 }) {
		t.Fatalf("soak made only %d calls before the relocation point", calls.Load())
	}
	repl, err := w.AttachConfig(relocHost, ntcs.Config{
		Name: serverNames[3], Attrs: map[string]string{"role": "echo"}, InboxSize: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(repl)

	// Soak for the configured duration, then keep polling (bounded) until
	// the workload demonstrably ran: the ≥500-calls assertion below used
	// to race a fixed sleep on slow machines.
	time.Sleep(soakDuration(700 * time.Millisecond))
	pollUntil(10*time.Second, func() bool { return calls.Load() >= 500 })
	close(stop)
	wg.Wait()

	total, failed := calls.Load(), callErrs.Load()
	if total < 500 {
		t.Errorf("soak made only %d calls", total)
	}
	if failed*10 > total {
		t.Errorf("soak failure rate too high: %d of %d", failed, total)
	}
	t.Logf("soak: %d calls, %d failed (%.2f%%)", total, failed, 100*float64(failed)/float64(total))
}

// TestSoakRelocationChurn repeatedly relocates one module while a client
// hammers it: every relocation is eventually absorbed.
func TestSoakRelocationChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	w, _ := oneNetWorld(t)
	hosts := []*sim.Host{
		w.MustHost("h0", machine.VAX, "ring"),
		w.MustHost("h1", machine.Sun68K, "ring"),
		w.MustHost("h2", machine.Apollo, "ring"),
	}
	cur, err := w.Attach(hosts[0], "churner", map[string]string{"role": "c"})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(cur)
	client, err := w.Attach(w.MustHost("ch", machine.VAX, "ring"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("churner")
	if err != nil {
		t.Fatal(err)
	}

	var ok, failed int
	for round := 0; round < 5; round++ {
		// Burst against the current incarnation.
		for i := 0; i < 20; i++ {
			var reply string
			if err := client.Call(u, "q", "x", &reply); err != nil {
				failed++
			} else {
				ok++
			}
		}
		// Relocate.
		if err := cur.Detach(); err != nil {
			t.Fatal(err)
		}
		next, err := w.Attach(hosts[(round+1)%3], "churner", map[string]string{"role": "c"})
		if err != nil {
			t.Fatal(err)
		}
		echoServe(next)
		cur = next

		// The old address must recover.
		deadline := time.Now().Add(3 * time.Second)
		recovered := false
		for time.Now().Before(deadline) {
			var reply string
			if err := client.Call(u, "q", "probe", &reply); err == nil {
				recovered = true
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if !recovered {
			t.Fatalf("round %d: relocation never absorbed", round)
		}
	}
	if ok == 0 {
		t.Fatal("no successful calls at all")
	}
	t.Logf("churn: %d ok, %d transient failures over 5 relocations", ok, failed)
	// The forwarding chain grew but stays bounded and functional.
	if n := client.Nucleus().LCM.ForwardTable().Len(); n > 10 {
		t.Errorf("forwarding table grew to %d entries", n)
	}
}
