// Benchmarks regenerating the experiment index of DESIGN.md §4: one
// bench per quantified claim. `go test -bench=. -benchmem` prints the
// series; EXPERIMENTS.md records representative runs. The ntcsbench
// binary prints the same measurements as tables.
package ntcs_test

import (
	"fmt"
	"testing"
	"time"

	"ntcs/internal/addr"
	"ntcs/internal/core"
	"ntcs/internal/drts/monitor"
	"ntcs/internal/drts/timesvc"
	"ntcs/internal/experiments"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/iplayer"
	"ntcs/internal/machine"
	"ntcs/internal/pack"
	"ntcs/internal/ursa"
	"ntcs/internal/wire"
	"ntcs/sim"
)

// --- E-SHIFT -------------------------------------------------------------

func BenchmarkShiftVsPackedHeaders(b *testing.B) {
	h := wire.Header{
		Type: wire.TData, Flags: 0x00FF, SrcMachine: machine.Sun68K, Mode: wire.ModePacked,
		Src: 1 << 40, Dst: 2 << 40, Circuit: 7, Seq: 42,
	}
	b.Run("shift", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			frame, err := wire.Marshal(h, nil)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := wire.Unmarshal(frame); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packed", func(b *testing.B) {
		type packedHeader struct {
			Type, SrcMachine, Mode, Hops uint8
			Flags                        uint16
			Src, Dst                     uint64
			Circuit, Seq                 uint32
		}
		ph := packedHeader{
			Type: uint8(h.Type), SrcMachine: uint8(h.SrcMachine), Mode: uint8(h.Mode),
			Flags: h.Flags, Src: uint64(h.Src), Dst: uint64(h.Dst), Circuit: h.Circuit, Seq: h.Seq,
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := pack.Marshal(ph)
			if err != nil {
				b.Fatal(err)
			}
			var out packedHeader
			if err := pack.Unmarshal(data, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E-CONV --------------------------------------------------------------

func BenchmarkConversionModes(b *testing.B) {
	pairs := []struct {
		name           string
		client, server machine.Type
	}{
		{"image/VAX-to-VAX", machine.VAX, machine.VAX},
		{"image/Apollo-to-Pyramid", machine.Apollo, machine.Pyramid},
		{"packed/VAX-to-Sun68K", machine.VAX, machine.Sun68K},
		{"packed/Sun68K-to-Apollo", machine.Sun68K, machine.Apollo},
	}
	for _, p := range pairs {
		b.Run(p.name, func(b *testing.B) {
			env, err := experiments.PairWithHops(0, p.client, p.server)
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			if err := env.RoundTripImage(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.RoundTripImage(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAdaptiveVsAlwaysPacked(b *testing.B) {
	run := func(b *testing.B, force bool) {
		w := sim.NewWorld()
		w.AddNetwork("net", memnet.Options{})
		defer w.Close()
		nsHost := w.MustHost("ns-host", machine.Apollo, "net")
		if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
			b.Fatal(err)
		}
		sHost := w.MustHost("server-host", machine.VAX, "net")
		server, err := w.Attach(sHost, "echo-server", nil)
		if err != nil {
			b.Fatal(err)
		}
		serveImageEcho(server)
		cHost := w.MustHost("client-host", machine.VAX, "net")
		client, err := w.AttachConfig(cHost, core.Config{Name: "client", ForcePacked: force})
		if err != nil {
			b.Fatal(err)
		}
		u, err := client.Locate("echo-server")
		if err != nil {
			b.Fatal(err)
		}
		in := experiments.ImageBody{A: 1, E: 2.5}
		var out experiments.ImageBody
		if err := client.Call(u, "image", in, &out); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := client.Call(u, "image", in, &out); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("adaptive", func(b *testing.B) { run(b, false) })
	b.Run("always-packed", func(b *testing.B) { run(b, true) })
}

// --- E-PACK (cross-machine leg) ------------------------------------------

// crossCallBody is the structured payload for the differing-machine-type
// call: the shape a real NSP record or application request carries, so
// both ends execute their compiled conversion plans (§5.1 packed mode).
type crossCallBody struct {
	Seq     int64
	Flags   uint32
	Load    float64
	OK      bool
	Name    string
	Detail  string
	Raw     []byte
	Samples []int32
	Attrs   map[string]string
}

// BenchmarkCrossMachineCall measures the end-to-end structured Call
// between differing machine types (VAX client, Sun68K server): machine
// incompatibility forces packed mode, so each round trip pays encode +
// decode on the request and again on the reply — the path the compiled
// codecs exist to speed up.
func BenchmarkCrossMachineCall(b *testing.B) {
	w := sim.NewWorld()
	w.AddNetwork("net", memnet.Options{})
	defer w.Close()
	nsHost := w.MustHost("ns-host", machine.Apollo, "net")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		b.Fatal(err)
	}
	sHost := w.MustHost("server-host", machine.Sun68K, "net")
	server, err := w.Attach(sHost, "pack-echo", nil)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			d, err := server.Recv(time.Hour)
			if err != nil {
				return
			}
			if !d.IsCall() {
				continue
			}
			var body crossCallBody
			if err := d.Decode(&body); err != nil {
				_ = server.ReplyError(d, err.Error())
				continue
			}
			_ = server.Reply(d, "pack", body)
		}
	}()
	cHost := w.MustHost("client-host", machine.VAX, "net")
	client, err := w.Attach(cHost, "client", nil)
	if err != nil {
		b.Fatal(err)
	}
	u, err := client.Locate("pack-echo")
	if err != nil {
		b.Fatal(err)
	}
	in := crossCallBody{
		Seq:     987654321,
		Flags:   0xBEEF,
		Load:    0.8125,
		OK:      true,
		Name:    "search-backend",
		Detail:  "replica 3 of 5, rack c-12",
		Raw:     []byte{0, 1, 2, 3, 4, 5, 6, 7},
		Samples: []int32{-1, 0, 1, 1 << 30, 42},
		Attrs:   map[string]string{"role": "server", "machine": "sun"},
	}
	var out crossCallBody
	if err := client.Call(u, "pack", in, &out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Call(u, "pack", in, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func serveImageEcho(m *core.Module) {
	go func() {
		for {
			d, err := m.Recv(time.Hour)
			if err != nil {
				return
			}
			if !d.IsCall() {
				continue
			}
			var body experiments.ImageBody
			if err := d.Decode(&body); err != nil {
				_ = m.ReplyError(d, err.Error())
				continue
			}
			_ = m.Reply(d, "image", body)
		}
	}()
}

// --- E-GWHOP -------------------------------------------------------------

func BenchmarkGatewayHops(b *testing.B) {
	for hops := 0; hops <= 3; hops++ {
		b.Run(fmt.Sprintf("hops-%d", hops), func(b *testing.B) {
			env, err := experiments.PairWithHops(hops, machine.VAX, machine.VAX)
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			if err := env.RoundTrip(256); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.RoundTrip(256); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-RECUR -------------------------------------------------------------

func BenchmarkFirstSendVsWarmSend(b *testing.B) {
	build := func(b *testing.B) (*sim.World, *core.Module, addr.UAdd) {
		w := sim.NewWorld()
		w.AddNetwork("net", memnet.Options{})
		nsHost := w.MustHost("ns-host", machine.Apollo, "net")
		if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
			b.Fatal(err)
		}
		host := w.MustHost("vax-1", machine.VAX, "net")
		tsMod, err := w.Attach(host, "time-server", nil)
		if err != nil {
			b.Fatal(err)
		}
		go timesvc.NewServer(tsMod, 0).Run()
		monMod, err := w.Attach(host, "monitor", nil)
		if err != nil {
			b.Fatal(err)
		}
		go monitor.NewServer(monMod).Run()
		recv, err := w.Attach(host, "receiver", nil)
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			for {
				if _, err := recv.Recv(time.Hour); err != nil {
					return
				}
			}
		}()
		sender, err := w.Attach(host, "sender", nil)
		if err != nil {
			b.Fatal(err)
		}
		corr := timesvc.NewCorrector(sender, "time-server", time.Hour)
		sender.SetClock(corr.Now)
		sender.SetMonitor(monitor.NewClient(sender, "monitor", 64).Record)
		u, err := sender.Locate("receiver")
		if err != nil {
			b.Fatal(err)
		}
		return w, sender, u
	}

	b.Run("first-send", func(b *testing.B) {
		// Each iteration needs a fresh world: first sends are by
		// definition unrepeatable.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			w, sender, u := build(b)
			b.StartTimer()
			if err := sender.Send(u, "m", "cold"); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			w.Close()
			b.StartTimer()
		}
	})
	b.Run("warm-send", func(b *testing.B) {
		w, sender, u := build(b)
		defer w.Close()
		if err := sender.Send(u, "m", "warmup"); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sender.Send(u, "m", "warm"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWarmSendParallel hammers one module's warm path from many
// goroutines at once: the measure of the lock-striping and pooling work
// (a coarse global mutex would serialize here; striped waiters, the
// destination cache, and sync.Map circuits let sends proceed in
// parallel).
func BenchmarkWarmSendParallel(b *testing.B) {
	w := sim.NewWorld()
	w.AddNetwork("net", memnet.Options{})
	defer w.Close()
	nsHost := w.MustHost("ns-host", machine.Apollo, "net")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		b.Fatal(err)
	}
	host := w.MustHost("vax-1", machine.VAX, "net")
	recv, err := w.Attach(host, "receiver", nil)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			if _, err := recv.Recv(time.Hour); err != nil {
				return
			}
		}
	}()
	sender, err := w.Attach(host, "sender", nil)
	if err != nil {
		b.Fatal(err)
	}
	u, err := sender.Locate("receiver")
	if err != nil {
		b.Fatal(err)
	}
	if err := sender.Send(u, "m", "warmup"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := sender.Send(u, "m", "warm"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E-RECONF ------------------------------------------------------------

func BenchmarkRelocationLatency(b *testing.B) {
	w := sim.NewWorld()
	w.AddNetwork("net", memnet.Options{})
	defer w.Close()
	nsHost := w.MustHost("ns-host", machine.Apollo, "net")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		b.Fatal(err)
	}
	hosts := []*sim.Host{
		w.MustHost("vax-1", machine.VAX, "net"),
		w.MustHost("vax-2", machine.VAX, "net"),
	}
	start := func(i int) *core.Module {
		m, err := w.Attach(hosts[i%2], "worker", map[string]string{"role": "w"})
		if err != nil {
			b.Fatal(err)
		}
		serveImageEcho(m)
		return m
	}
	cur := start(0)
	client, err := w.Attach(hosts[0], "client", nil)
	if err != nil {
		b.Fatal(err)
	}
	u, err := client.Locate("worker")
	if err != nil {
		b.Fatal(err)
	}
	call := func() error {
		in := experiments.ImageBody{A: 1}
		var out experiments.ImageBody
		return client.Call(u, "image", in, &out)
	}
	if err := call(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	// Each iteration: kill, restart elsewhere, measure until recovered.
	for i := 0; i < b.N; i++ {
		if err := cur.Detach(); err != nil {
			b.Fatal(err)
		}
		cur = start(i + 1)
		for call() != nil {
		}
	}
}

// --- E-NSRM --------------------------------------------------------------

func BenchmarkResolutionCache(b *testing.B) {
	env, err := experiments.PairWithHops(0, machine.VAX, machine.VAX)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	if err := env.RoundTrip(64); err != nil {
		b.Fatal(err)
	}
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := env.RoundTrip(64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			env.Client.Nucleus().IP.DropCircuits(env.Dst)
			env.Client.Nucleus().Cache.Delete(env.Dst)
			if err := env.RoundTrip(64); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E-PORT --------------------------------------------------------------

func BenchmarkPortabilityMatrix(b *testing.B) {
	for _, kind := range []string{"memnet", "mbx", "tcp"} {
		b.Run(kind, func(b *testing.B) {
			env, err := experiments.PairOverIPCS(kind)
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			if err := env.RoundTrip(256); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.RoundTrip(256); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-ROUTE -------------------------------------------------------------

func BenchmarkRouteComputation(b *testing.B) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("networks-%d", n), func(b *testing.B) {
			gws := make([]iplayer.GatewayInfo, 0, n-1)
			for i := 0; i < n-1; i++ {
				gws = append(gws, iplayer.GatewayInfo{
					UAdd:     addr.UAdd(1000 + i),
					Networks: []string{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)},
				})
			}
			dest := fmt.Sprintf("n%d", n-1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := iplayer.ComputeRoute([]string{"n0"}, dest, gws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E-URSA --------------------------------------------------------------

func BenchmarkURSAQuery(b *testing.B) {
	for _, cross := range []bool{false, true} {
		name := "same-network"
		if cross {
			name = "across-gateway"
		}
		b.Run(name, func(b *testing.B) {
			w := sim.NewWorld()
			w.AddNetwork("backend", memnet.Options{})
			hostNet := "backend"
			if cross {
				w.AddNetwork("office", memnet.Options{})
				hostNet = "office"
			}
			defer w.Close()
			nsHost := w.MustHost("ns-host", machine.Apollo, "backend")
			if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
				b.Fatal(err)
			}
			if cross {
				gwHost := w.MustHost("gw-host", machine.Apollo, "backend", "office")
				if _, err := w.StartGateway(gwHost, "gw"); err != nil {
					b.Fatal(err)
				}
			}
			bHost := w.MustHost("backend-host", machine.VAX, "backend")
			if _, err := ursa.Deploy(w, bHost, bHost, bHost); err != nil {
				b.Fatal(err)
			}
			cHost := w.MustHost("host-host", machine.Sun68K, hostNet)
			hostMod, err := w.Attach(cHost, "host-1", nil)
			if err != nil {
				b.Fatal(err)
			}
			client := ursa.NewClient(hostMod)
			if err := client.Ingest(ursa.GenerateCorpus(200, 1)); err != nil {
				b.Fatal(err)
			}
			queries := ursa.Queries(50, 2)
			if _, err := client.Search(queries[0], 5); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Search(queries[i%len(queries)], 5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
