package ntcs_test

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"ntcs/internal/machine"
	"ntcs/internal/proctest"
)

// TestMultiProcessStyleDeployment wires modules the way the cmd binaries
// do: each "process" holds its own open tcpnet instance and learns the
// Name Server only from the topology's well-known preload. Nothing is
// shared in memory except the loopback interface. The wiring lives in
// the proctest fixture, which realizes the same topology here in-process
// and as real OS processes in internal/proctest's smoke test.
func TestMultiProcessStyleDeployment(t *testing.T) {
	d := proctest.BootInProcess(t, proctest.SmokeTopology())
	proctest.VerifyEcho(t, d, "tcp-server")
}

// fuzzBody is a representative message shape for the end-to-end property
// test: scalars, strings, slices, nesting.
type fuzzBody struct {
	A int64
	B uint32
	C string
	D []byte
	E bool
	F float64
	G []int16
	H map[string]uint8
	I innerFuzz
}

type innerFuzz struct {
	X string
	Y []int64
}

// TestQuickEndToEndRoundTrip is the stack-level property test: arbitrary
// bodies survive Call/Reply across incompatible machines (packed mode)
// byte-for-byte.
func TestQuickEndToEndRoundTrip(t *testing.T) {
	w, _ := oneNetWorld(t)
	server, err := w.Attach(w.MustHost("sun", machine.Sun68K, "ring"), "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			d, err := server.Recv(time.Hour)
			if err != nil {
				return
			}
			if !d.IsCall() {
				continue
			}
			var body fuzzBody
			if err := d.Decode(&body); err != nil {
				_ = server.ReplyError(d, err.Error())
				continue
			}
			_ = server.Reply(d, "echo", body)
		}
	}()
	client, err := w.Attach(w.MustHost("vax", machine.VAX, "ring"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}

	f := func(in fuzzBody) bool {
		var out fuzzBody
		if err := client.Call(u, "echo", in, &out); err != nil {
			t.Logf("call: %v", err)
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
