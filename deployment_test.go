package ntcs_test

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"ntcs/internal/addr"
	"ntcs/internal/cli"
	"ntcs/internal/core"
	"ntcs/internal/ipcs"
	"ntcs/internal/ipcs/tcpnet"
	"ntcs/internal/machine"
)

// TestMultiProcessStyleDeployment wires modules the way the cmd binaries
// do: each "process" holds its own open tcpnet instance and learns the
// Name Server only from the -ns style well-known configuration. Nothing
// is shared in memory except the loopback interface.
func TestMultiProcessStyleDeployment(t *testing.T) {
	// Process 1: the Name Server.
	nsNet := tcpnet.NewOpen("backbone")
	nsMod, err := core.Attach(core.Config{
		Name:          "ns",
		Machine:       machine.Apollo,
		Networks:      []ipcs.Network{nsNet},
		EndpointHints: map[string]string{"backbone": "127.0.0.1:0"},
		Kind:          core.KindNameServer,
		FixedUAdd:     addr.NameServer,
		ServerID:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nsMod.Detach()
	nsAddr := nsMod.Endpoints()[0].Addr

	// Everyone else gets the NS address as flag-style configuration.
	wk, err := cli.ParseWellKnown("backbone="+nsAddr, "apollo")
	if err != nil {
		t.Fatal(err)
	}

	// Process 2: the server module, with its own tcpnet instance.
	attach := func(name string, m machine.Type) *core.Module {
		t.Helper()
		mod, err := core.Attach(core.Config{
			Name:          name,
			Machine:       m,
			Networks:      []ipcs.Network{tcpnet.NewOpen("backbone")},
			EndpointHints: map[string]string{"backbone": "127.0.0.1:0"},
			WellKnown:     wk,
		})
		if err != nil {
			t.Fatalf("attach %s: %v", name, err)
		}
		t.Cleanup(func() { mod.Detach() })
		return mod
	}

	server := attach("tcp-server", machine.Sun68K)
	go func() {
		for {
			d, err := server.Recv(time.Hour)
			if err != nil {
				return
			}
			if d.IsCall() {
				var s string
				if err := d.Decode(&s); err != nil {
					_ = server.ReplyError(d, err.Error())
					continue
				}
				_ = server.Reply(d, "r", "srv:"+s)
			}
		}
	}()

	// Process 3: the client.
	client := attach("tcp-client", machine.VAX)
	u, err := client.Locate("tcp-server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "over real sockets", &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "srv:over real sockets" {
		t.Errorf("reply = %q", reply)
	}
}

// fuzzBody is a representative message shape for the end-to-end property
// test: scalars, strings, slices, nesting.
type fuzzBody struct {
	A int64
	B uint32
	C string
	D []byte
	E bool
	F float64
	G []int16
	H map[string]uint8
	I innerFuzz
}

type innerFuzz struct {
	X string
	Y []int64
}

// TestQuickEndToEndRoundTrip is the stack-level property test: arbitrary
// bodies survive Call/Reply across incompatible machines (packed mode)
// byte-for-byte.
func TestQuickEndToEndRoundTrip(t *testing.T) {
	w, _ := oneNetWorld(t)
	server, err := w.Attach(w.MustHost("sun", machine.Sun68K, "ring"), "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			d, err := server.Recv(time.Hour)
			if err != nil {
				return
			}
			if !d.IsCall() {
				continue
			}
			var body fuzzBody
			if err := d.Decode(&body); err != nil {
				_ = server.ReplyError(d, err.Error())
				continue
			}
			_ = server.Reply(d, "echo", body)
		}
	}()
	client, err := w.Attach(w.MustHost("vax", machine.VAX, "ring"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}

	f := func(in fuzzBody) bool {
		var out fuzzBody
		if err := client.Call(u, "echo", in, &out); err != nil {
			t.Logf("call: %v", err)
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
