module ntcs

go 1.23
