module ntcs

go 1.22
