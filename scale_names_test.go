package ntcs_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ntcs"
	"ntcs/internal/addr"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/internal/nameserver"
	"ntcs/sim"
)

// TestScaleMillionNames is the PR-7 headline number, gated behind
// NTCS_SCALE=1 (run via `make bench-names`): a namespace of one million
// names hash-partitioned across four shard groups, resolved through the
// full NSP path by a leasing client. It writes the measured series to
// BENCH_PR7.json.
//
// The census is bulk-loaded into each shard's database directly (the
// registration protocol is exercised elsewhere; re-running a million LCM
// calls per bench run would measure the transport, not the name
// service), then every resolution rides the real client path: lease
// cache, shard routing, LCM call, server dispatch.
func TestScaleMillionNames(t *testing.T) {
	if os.Getenv("NTCS_SCALE") == "" {
		t.Skip("set NTCS_SCALE=1 (or run `make bench-names`) for the million-name benchmark")
	}
	const (
		nShards   = 4
		nNames    = 1_000_000
		hotSet    = 1024 // the working set the lease cache should absorb
		nWorkers  = 8
		perWorker = 25_000
	)
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	groups := startShardedNS(t, w, nShards, 1)
	t.Cleanup(w.Close)
	wk := w.WellKnown()

	// Bulk-load the census into the owning shards.
	loadStart := time.Now()
	names := make([]string, nNames)
	uadds := make([]addr.UAdd, nNames)
	perShard := make([]int, nShards)
	for i := range names {
		names[i] = fmt.Sprintf("svc-%07d", i)
		s := wk.ShardForName(names[i])
		perShard[s]++
		uadds[i] = groups[s][0].DB().Register(names[i], nil, nil).UAdd
	}
	loadRate := float64(nNames) / time.Since(loadStart).Seconds()
	t.Logf("census: %d names across %d shards %v in %v (%.0f/s)",
		nNames, nShards, perShard, time.Since(loadStart).Round(time.Millisecond), loadRate)

	client, err := w.AttachConfig(w.MustHost("client-host", machine.VAX, "ring"), ntcs.Config{
		Name:             "bench-client",
		ResolveTTL:       30 * time.Second,
		ResolveCacheSize: 4 * hotSet,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Spot-check correctness before timing anything.
	for _, i := range []int{0, nNames / 2, nNames - 1} {
		u, err := client.Locate(names[i])
		if err != nil || u != uadds[i] {
			t.Fatalf("Locate(%q) = %v, %v; want %v", names[i], u, err, uadds[i])
		}
	}

	// Mixed workload: 90% of resolutions hit a hot working set (the lease
	// cache's job), 10% sample the full million uniformly (the shard
	// routing's job).
	base := client.Stats().Snapshot().Counters
	var wrong atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < nWorkers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			layer := client.NSP()
			for k := 0; k < perWorker; k++ {
				i := rng.Intn(hotSet)
				if rng.Intn(10) == 0 {
					i = rng.Intn(nNames)
				}
				u, err := layer.Resolve(names[i])
				if err != nil || u != uadds[i] {
					wrong.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := wrong.Load(); n > 0 {
		t.Fatalf("%d resolutions returned the wrong UAdd or failed", n)
	}
	after := client.Stats().Snapshot().Counters
	hits := after["nsp.cache.hits"] - base["nsp.cache.hits"]
	misses := after["nsp.cache.misses"] - base["nsp.cache.misses"]
	hitRate := float64(hits) / float64(hits+misses)
	mixedRate := float64(nWorkers*perWorker) / elapsed.Seconds()
	t.Logf("mixed workload: %d resolutions in %v (%.0f/s), cache hit rate %.1f%%",
		nWorkers*perWorker, elapsed.Round(time.Millisecond), mixedRate, 100*hitRate)

	// Cold series: a cacheless client, every resolution a full naming
	// exchange — the server-path floor under the same million names.
	cold, err := w.Attach(w.MustHost("cold-host", machine.VAX, "ring"), "cold-client", nil)
	if err != nil {
		t.Fatal(err)
	}
	const nCold = 20_000
	rng := rand.New(rand.NewSource(99))
	start = time.Now()
	for k := 0; k < nCold; k++ {
		i := rng.Intn(nNames)
		if u, err := cold.NSP().Resolve(names[i]); err != nil || u != uadds[i] {
			t.Fatalf("cold Resolve(%q) = %v, %v", names[i], u, err)
		}
	}
	coldRate := float64(nCold) / time.Since(start).Seconds()
	t.Logf("cold path: %d resolutions (%.0f/s)", nCold, coldRate)

	if hitRate < 0.5 {
		t.Errorf("cache hit rate %.2f; the hot set did not stay leased", hitRate)
	}

	out := map[string]any{
		"description": fmt.Sprintf("PR-7 million-name series: %d names hash-partitioned across %d shard groups, resolved through the full NSP path (lease cache, shard routing, LCM call, server dispatch). Run via `make bench-names` (NTCS_SCALE=1 go test . -run TestScaleMillionNames); this file is rewritten with the measured numbers each run.", nNames, nShards),
		"benchmarks": map[string]any{
			"census_load": map[string]any{
				"names":           nNames,
				"shards":          nShards,
				"names_per_shard": perShard,
				"load_per_sec":    int(loadRate),
				"note":            "bulk insert into the owning shard databases; the registration protocol itself is benched separately",
			},
			"mixed_resolution": map[string]any{
				"resolutions":         nWorkers * perWorker,
				"workers":             nWorkers,
				"hot_set":             hotSet,
				"resolutions_per_sec": int(mixedRate),
				"cache_hit_rate":      float64(int(10000*hitRate)) / 10000,
				"note":                "90% of resolutions draw from the hot set, 10% sample the full namespace uniformly; the lease cache absorbs the hot set and the misses exercise the shard routing",
			},
			"cold_resolution": map[string]any{
				"resolutions":         nCold,
				"resolutions_per_sec": int(coldRate),
				"note":                "cacheless client, uniform sampling: every resolution is a complete naming exchange with the owning shard",
			},
		},
		"methodology": "Single NTCS_SCALE=1 run on the CI-class box over the in-memory network; rates swing with CPU frequency, the cache hit rate is stable. Correctness is asserted, not sampled: every resolution in every series must return the registered UAdd.",
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR7.json", append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_PR7.json")
}

// TestConvergenceSoak is the NTCS_SCALE-gated replica-divergence soak
// (wired into `make scale-gate`): two replicas of a three-way group are
// seeded with divergent register/relocate/deregister histories behind
// the replication protocol's back — the state of replicas restored from
// stale checkpoints, which the write-path push can never repair. The
// periodic digest exchange alone must drive all three replicas to the
// exact merged state (the end-to-end form of the
// TestReplicaConvergenceProperty merge rules), including the death
// notices and their origin stamps.
func TestConvergenceSoak(t *testing.T) {
	if os.Getenv("NTCS_SCALE") == "" {
		t.Skip("set NTCS_SCALE=1 (or run `make scale-gate`) for the convergence soak")
	}
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	w.SetNameServerTuning(50*time.Millisecond, 0)
	groups := startShardedNS(t, w, 1, 3)
	t.Cleanup(w.Close)
	replicas := groups[0]

	// Divergent histories: replica 0 and replica 1 each hold a slice of
	// the namespace the other two have never seen; the model database
	// (the Insert merge is order-independent, proven by the property
	// test) is the ground truth every replica must reach.
	model := nameserver.NewDB(9)
	churn := func(db *nameserver.DB, prefix string, rng *rand.Rand, ops int) {
		alive := make(map[string]nameserver.Record)
		for i := 0; i < ops; i++ {
			name := fmt.Sprintf("%s-%d", prefix, rng.Intn(40))
			cur, ok := alive[name]
			switch {
			case ok && rng.Intn(3) == 0:
				db.Deregister(cur.UAdd)
				dead, _ := db.Lookup(cur.UAdd)
				model.Insert(dead)
				delete(alive, name)
			default:
				rec := db.Register(name, nil, nil)
				model.Insert(rec)
				if ok {
					db.Deregister(cur.UAdd)
					dead, _ := db.Lookup(cur.UAdd)
					model.Insert(dead)
				}
				alive[name] = rec
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	churn(replicas[0].DB(), "soak-a", rng, 150)
	churn(replicas[1].DB(), "soak-b", rng, 150)

	// Anti-entropy must now move soak-a records to replicas 1 and 2,
	// soak-b records to replicas 0 and 2 — pulls and pushes in every
	// pairing — until every replica answers exactly like the model.
	match := func() error {
		for i, m := range replicas {
			db := m.DB()
			for _, want := range model.Snapshot() {
				got, err := db.Lookup(want.UAdd)
				if err != nil {
					return fmt.Errorf("replica %d: Lookup(%v): %w", i, want.UAdd, err)
				}
				if got.Alive != want.Alive || got.Incarnation != want.Incarnation {
					return fmt.Errorf("replica %d: Lookup(%v) = alive=%v inc=%d; want alive=%v inc=%d",
						i, want.UAdd, got.Alive, got.Incarnation, want.Alive, want.Incarnation)
				}
				if !want.Alive && !got.DiedAt.Equal(want.DiedAt) {
					return fmt.Errorf("replica %d: %v DiedAt = %v, want origin stamp %v",
						i, want.UAdd, got.DiedAt, want.DiedAt)
				}
				wantRec, werr := model.Resolve(got.Name)
				gotRec, gerr := db.Resolve(got.Name)
				if werr != nil {
					if !errors.Is(gerr, nameserver.ErrNotFound) {
						return fmt.Errorf("replica %d: Resolve(%q) = %v, want not-found", i, got.Name, gerr)
					}
				} else if gerr != nil || gotRec.UAdd != wantRec.UAdd {
					return fmt.Errorf("replica %d: Resolve(%q) = %v, %v; want %v",
						i, got.Name, gotRec.UAdd, gerr, wantRec.UAdd)
				}
			}
		}
		return nil
	}
	deadline := time.Now().Add(30 * time.Second)
	var lastErr error
	for {
		if lastErr = match(); lastErr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas never converged: %v", lastErr)
		}
		time.Sleep(50 * time.Millisecond)
	}

	totals := w.StatsTotals()
	if totals.Counters["ns.antientropy.rounds"] == 0 {
		t.Error("convergence without a single metered anti-entropy round")
	}
	if totals.Counters["ns.antientropy.pulled"]+totals.Counters["ns.antientropy.pushed"] == 0 {
		t.Error("anti-entropy moved no records yet the straggler converged")
	}
	t.Logf("converged; ae rounds=%d pulled=%d pushed=%d stale=%d",
		totals.Counters["ns.antientropy.rounds"],
		totals.Counters["ns.antientropy.pulled"],
		totals.Counters["ns.antientropy.pushed"],
		totals.Counters["ns.replication_stale"])
}
