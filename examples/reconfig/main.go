// Reconfig: dynamic reconfiguration under load (§3.5). A worker module
// migrates across three machines — driven by the DRTS process control
// service — while a client hammers it with calls addressed to the UAdd it
// resolved once at startup. The client observes only brief faults; the
// address-fault handler and the forwarding table keep the conversation
// alive across every move.
//
// Run with: go run ./examples/reconfig
package main

import (
	"fmt"
	"log"
	"time"

	"ntcs"
	"ntcs/internal/core"
	"ntcs/internal/drts/proctl"
	"ntcs/internal/ipcs/memnet"
	"ntcs/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world := sim.NewWorld()
	world.AddNetwork("ring", memnet.Options{})
	defer world.Close()
	nsHost := world.MustHost("apollo-ns", ntcs.Apollo, "ring")
	if _, err := world.StartNameServer(nsHost, "ns"); err != nil {
		return err
	}

	// Three machines, each with a process-control agent able to start the
	// worker locally.
	hostNames := []string{"vax-1", "sun-1", "apollo-1"}
	machines := []ntcs.Machine{ntcs.VAX, ntcs.Sun68K, ntcs.Apollo}
	agents := make([]string, len(hostNames))
	for i, hn := range hostNames {
		host := world.MustHost(hn, machines[i], "ring")
		agentMod, err := world.Attach(host, "agent-"+hn, map[string]string{"role": "proctl"})
		if err != nil {
			return err
		}
		agent := proctl.NewAgent(agentMod, workerFactory(world, host))
		go agent.Run()
		agents[i] = "agent-" + hn
	}

	ctlHost := world.MustHost("console", ntcs.Apollo, "ring")
	ctl, err := world.Attach(ctlHost, "console", nil)
	if err != nil {
		return err
	}

	// Start the worker on the first machine and resolve it ONCE.
	if _, err := proctl.Start(ctl, agents[0], "worker", map[string]string{"role": "work"}); err != nil {
		return err
	}
	client, err := world.Attach(ctlHost, "client", nil)
	if err != nil {
		return err
	}
	u, err := client.Locate("worker")
	if err != nil {
		return err
	}
	fmt.Printf("worker located once: %v (never re-resolved below)\n\n", u)

	call := func() (string, error) {
		var where string
		err := client.Call(u, "work", "job", &where)
		return where, err
	}

	for leg := 0; leg < len(hostNames); leg++ {
		// A burst of calls against the current incarnation.
		ok, faults := 0, 0
		var lastWhere string
		for i := 0; i < 25; i++ {
			where, err := call()
			if err != nil {
				faults++
				time.Sleep(10 * time.Millisecond)
				continue
			}
			ok++
			lastWhere = where
		}
		fmt.Printf("leg %d: %2d calls served by %-9s (%d transient faults)\n",
			leg+1, ok, lastWhere, faults)
		fmt.Printf("       client tables: %d forwarding entries, %d address faults absorbed\n",
			client.Nucleus().LCM.ForwardTable().Len(),
			client.Errors().Count("lcm.address-fault"))

		if leg == len(hostNames)-1 {
			break
		}
		from, to := agents[leg], agents[leg+1]
		fmt.Printf("       relocating worker %s → %s ...\n", from, to)
		if _, err := proctl.Relocate(ctl, from, to, "worker", map[string]string{"role": "work"}); err != nil {
			return err
		}
	}
	fmt.Println("\nthe client never re-located the worker; every move was absorbed")
	fmt.Println("by the LCM address-fault handler and the naming service (§3.5).")
	return nil
}

// workerFactory builds worker incarnations that answer with their host.
func workerFactory(world *sim.World, host *sim.Host) proctl.Factory {
	return func(name string, attrs map[string]string) (*core.Module, error) {
		m, err := world.Attach(host, name, attrs)
		if err != nil {
			return nil, err
		}
		go func() {
			for {
				d, err := m.Recv(time.Hour)
				if err != nil {
					return
				}
				if d.IsCall() {
					_ = m.Reply(d, "done", host.Name)
				}
			}
		}()
		return m, nil
	}
}
