// Quickstart: two modules on one simulated network exchange a synchronous
// call through the full NTCS stack — logical naming, UAdd resolution,
// automatic conversion-mode selection, context-aware deadlines, and
// inspectable errors.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"ntcs"
	"ntcs/internal/ipcs/memnet"
	"ntcs/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A world is a simulated testbed: networks, machines, and the
	// well-known address configuration every module is born with.
	world := sim.NewWorld()
	world.AddNetwork("ring", memnet.Options{})
	defer world.Close()

	// The Name Server comes first: everything else registers with it.
	nsHost := world.MustHost("apollo-ns", ntcs.Apollo, "ring")
	if _, err := world.StartNameServer(nsHost, "ns"); err != nil {
		return fmt.Errorf("start name server: %w", err)
	}

	// A Sun machine runs the greeter service...
	sunHost := world.MustHost("sun-1", ntcs.Sun68K, "ring")
	greeter, err := world.Attach(sunHost, "greeter", map[string]string{"role": "greeting"})
	if err != nil {
		return fmt.Errorf("attach greeter: %w", err)
	}
	go serveGreetings(greeter)

	// ...and a VAX runs the client.
	vaxHost := world.MustHost("vax-1", ntcs.VAX, "ring")
	client, err := world.Attach(vaxHost, "client", nil)
	if err != nil {
		return fmt.Errorf("attach client: %w", err)
	}

	// Resource location: name → UAdd, once. Everything after this is
	// transparent to relocation.
	u, err := client.Locate("greeter")
	if err != nil {
		return fmt.Errorf("locate greeter: %w", err)
	}
	fmt.Printf("located %q at %v\n", "greeter", u)

	// A synchronous send/receive/reply call, bounded by a context
	// deadline. The body crosses from a little-endian VAX to a big-endian
	// Sun: the NTCS selects packed mode automatically.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var reply string
	if err := client.CallContext(ctx, u, "greet", "ICDCS 1986", &reply); err != nil {
		return fmt.Errorf("call greeter: %w", err)
	}
	fmt.Printf("reply: %s\n", reply)

	// Errors are inspectable. A callee's error reply surfaces as a
	// structured *ntcs.RemoteError carrying who failed and why...
	err = client.Call(u, "greet", struct{ Bad int }{42}, &reply)
	var remote *ntcs.RemoteError
	if errors.As(err, &remote) {
		fmt.Printf("remote error from %v: %s\n", remote.Src, remote.Msg)
	}

	// ...and an expired deadline matches context.DeadlineExceeded,
	// whether the context or the NTCS call timer fired first.
	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-expired.Done()
	if err := client.CallContext(expired, u, "greet", "too late", &reply); errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("deadline exceeded, as expected")
	}
	return nil
}

func serveGreetings(m *ntcs.Module) {
	for {
		d, err := m.Recv(time.Hour)
		if err != nil {
			return
		}
		var who string
		if err := d.Decode(&who); err != nil {
			_ = m.ReplyError(d, err.Error())
			continue
		}
		_ = m.Reply(d, "greeting", fmt.Sprintf("hello, %s — from %s via %s mode", who, m.Name(), d.Mode()))
	}
}
