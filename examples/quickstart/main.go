// Quickstart: two modules on one simulated network exchange a synchronous
// call through the full NTCS stack — logical naming, UAdd resolution,
// automatic conversion-mode selection.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ntcs"
	"ntcs/internal/ipcs/memnet"
	"ntcs/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A world is a simulated testbed: networks, machines, and the
	// well-known address configuration every module is born with.
	world := sim.NewWorld()
	world.AddNetwork("ring", memnet.Options{})
	defer world.Close()

	// The Name Server comes first: everything else registers with it.
	nsHost := world.MustHost("apollo-ns", ntcs.Apollo, "ring")
	if _, err := world.StartNameServer(nsHost, "ns"); err != nil {
		return fmt.Errorf("start name server: %w", err)
	}

	// A Sun machine runs the greeter service...
	sunHost := world.MustHost("sun-1", ntcs.Sun68K, "ring")
	greeter, err := world.Attach(sunHost, "greeter", map[string]string{"role": "greeting"})
	if err != nil {
		return fmt.Errorf("attach greeter: %w", err)
	}
	go serveGreetings(greeter)

	// ...and a VAX runs the client.
	vaxHost := world.MustHost("vax-1", ntcs.VAX, "ring")
	client, err := world.Attach(vaxHost, "client", nil)
	if err != nil {
		return fmt.Errorf("attach client: %w", err)
	}

	// Resource location: name → UAdd, once. Everything after this is
	// transparent to relocation.
	u, err := client.Locate("greeter")
	if err != nil {
		return fmt.Errorf("locate greeter: %w", err)
	}
	fmt.Printf("located %q at %v\n", "greeter", u)

	// A synchronous send/receive/reply call. The body crosses from a
	// little-endian VAX to a big-endian Sun: the NTCS selects packed mode
	// automatically.
	var reply string
	if err := client.Call(u, "greet", "ICDCS 1986", &reply); err != nil {
		return fmt.Errorf("call greeter: %w", err)
	}
	fmt.Printf("reply: %s\n", reply)
	return nil
}

func serveGreetings(m *ntcs.Module) {
	for {
		d, err := m.Recv(time.Hour)
		if err != nil {
			return
		}
		var who string
		if err := d.Decode(&who); err != nil {
			_ = m.ReplyError(d, err.Error())
			continue
		}
		_ = m.Reply(d, "greeting", fmt.Sprintf("hello, %s — from %s via %s mode", who, m.Name(), d.Mode()))
	}
}
