// Heterogeneous: the §5 data-conversion story, demonstrated. A VAX
// (little-endian) exchanges a telemetry struct with another VAX, a Sun,
// and an Apollo. The NTCS selects image mode between compatible machines
// and packed mode otherwise — and this program also shows the corruption
// a raw byte copy between incompatible machines would produce, which is
// exactly what the adaptive selection prevents.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"ntcs"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/sim"
)

// Telemetry is a fixed-size record: image-eligible (a contiguous block,
// as §5.1 requires).
type Telemetry struct {
	Reading  int32
	Pressure float64
	Channel  uint16
	Valid    bool
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// First, the raw 1986 problem, without the NTCS: the same struct's
	// memory image on a VAX and on a Sun are different byte strings, and
	// copying one onto the other machine scrambles the values.
	sample := Telemetry{Reading: 0x11223344, Pressure: 1013.25, Channel: 7, Valid: true}
	vaxImage, err := machine.Image(sample, machine.VAX)
	if err != nil {
		return err
	}
	var scrambled Telemetry
	if err := machine.ImageDecode(vaxImage, machine.Sun68K, &scrambled); err != nil {
		return err
	}
	fmt.Println("raw byte copy of a VAX image, read on a Sun (what §5 prevents):")
	fmt.Printf("  sent    %+v\n", sample)
	fmt.Printf("  decoded %+v   ← byte-swapped garbage\n\n", scrambled)

	// Now through the NTCS, which picks the mode per destination.
	world := sim.NewWorld()
	world.AddNetwork("ring", memnet.Options{})
	defer world.Close()
	nsHost := world.MustHost("apollo-ns", ntcs.Apollo, "ring")
	if _, err := world.StartNameServer(nsHost, "ns"); err != nil {
		return err
	}

	sender, err := world.Attach(world.MustHost("vax-a", ntcs.VAX, "ring"), "sender", nil)
	if err != nil {
		return err
	}

	targets := []struct {
		host string
		m    ntcs.Machine
	}{
		{"vax-b", ntcs.VAX},
		{"sun-1", ntcs.Sun68K},
		{"apollo-1", ntcs.Apollo},
		{"pyramid-1", ntcs.Pyramid},
	}
	fmt.Println("through the NTCS (sender is a VAX):")
	for _, tgt := range targets {
		mod, err := world.Attach(world.MustHost(tgt.host, tgt.m, "ring"), tgt.host+"-rx", nil)
		if err != nil {
			return err
		}
		modeCh := make(chan string, 1)
		go func(m *ntcs.Module) {
			d, err := m.Recv(5 * time.Second)
			if err != nil {
				return
			}
			var tl Telemetry
			if err := d.Decode(&tl); err != nil {
				modeCh <- "DECODE ERROR: " + err.Error()
				return
			}
			status := "intact"
			if tl != sample {
				status = "CORRUPT"
			}
			modeCh <- fmt.Sprintf("%-6s mode, values %s", d.Mode(), status)
		}(mod)

		u, err := sender.Locate(tgt.host + "-rx")
		if err != nil {
			return err
		}
		if err := sender.Send(u, "telemetry", sample); err != nil {
			return err
		}
		select {
		case result := <-modeCh:
			fmt.Printf("  VAX → %-9s (%-7s): %s\n", tgt.host, tgt.m, result)
		case <-time.After(5 * time.Second):
			return fmt.Errorf("no delivery at %s", tgt.host)
		}
	}
	fmt.Println("\nimage mode was used only where a byte copy is legal;")
	fmt.Println("every other destination got the packed character representation.")
	return nil
}
