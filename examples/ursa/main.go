// URSA: the paper's motivating application — a distributed information
// retrieval system with index, search, and document backends on
// heterogeneous machines across two disjoint networks, joined by an NTCS
// gateway. Mid-run, the search server is relocated to another machine
// while the host keeps querying.
//
// Run with: go run ./examples/ursa
package main

import (
	"fmt"
	"log"
	"time"

	"ntcs"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/ursa"
	"ntcs/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Topology: the host workstation lives on the office ring; the
	// backends on the machine-room net. A prime gateway joins them.
	world := sim.NewWorld()
	world.AddNetwork("office-ring", memnet.Options{Latency: 200 * time.Microsecond})
	world.AddNetwork("machine-room", memnet.Options{Latency: 50 * time.Microsecond})
	defer world.Close()

	nsHost := world.MustHost("apollo-ns", ntcs.Apollo, "machine-room")
	if _, err := world.StartNameServer(nsHost, "ns"); err != nil {
		return err
	}
	gwHost := world.MustHost("apollo-gw", ntcs.Apollo, "office-ring", "machine-room")
	if _, err := world.StartGateway(gwHost, "gw-office"); err != nil {
		return err
	}

	// Backends on three different machine types.
	idxHost := world.MustHost("apollo-1", ntcs.Apollo, "machine-room")
	docHost := world.MustHost("vax-1", ntcs.VAX, "machine-room")
	searchHost := world.MustHost("sun-1", ntcs.Sun68K, "machine-room")
	dep, err := ursa.Deploy(world, idxHost, docHost, searchHost)
	if err != nil {
		return err
	}
	fmt.Println("backends up:",
		ursa.IndexServerName, "on apollo-1,",
		ursa.DocServerName, "on vax-1,",
		ursa.SearchServerName, "on sun-1")

	// The host workstation, across the gateway.
	hostHost := world.MustHost("sun-desk", ntcs.Sun68K, "office-ring")
	hostMod, err := world.Attach(hostHost, "host-1", nil)
	if err != nil {
		return err
	}
	client := ursa.NewClient(hostMod)

	if err := client.Ingest(ursa.BuiltinCorpus()); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	fmt.Printf("ingested %d documents; index holds %d terms\n",
		len(ursa.BuiltinCorpus()), dep.Index.Terms())

	show := func(query string) error {
		reply, err := client.Search(query, 3)
		if err != nil {
			return fmt.Errorf("search %q: %w", query, err)
		}
		fmt.Printf("query %q → %d hits\n", query, len(reply.Hits))
		for _, h := range reply.Hits {
			fmt.Printf("  doc %-2d score %-5d %s\n", h.DocID, h.Score, h.Title)
		}
		return nil
	}
	if err := show("distributed system"); err != nil {
		return err
	}
	if err := show("information retrieval"); err != nil {
		return err
	}

	// Dynamic reconfiguration (§3.5): the search server moves from the
	// Sun to the VAX while the host keeps its old address.
	fmt.Println("\nrelocating", ursa.SearchServerName, "from sun-1 to vax-1 ...")
	if err := dep.SearchModule.Detach(); err != nil {
		return err
	}
	m, err := world.Attach(docHost, ursa.SearchServerName, map[string]string{"role": "search"})
	if err != nil {
		return err
	}
	_ = ursa.NewSearchServer(m)

	// The host's cached UAdd now points at a dead module; the first
	// query faults, forwards, and lands on the replacement.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if err := show("network transparent communication"); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	faults := hostMod.Errors()
	fmt.Printf("\nhost error table after relocation:\n%s", faults)
	return nil
}
