// Recursion: the §6.1 scenario, made visible. "The amount of recursion
// occurring within the NTCS may not be obvious" — this program enables
// the distributed time corrector and the network monitor on a module,
// sends its first message, and prints the causal trace tree: the time
// primitive recursively locating and calling its support module, the
// naming service consulted recursively for the actual send, and the
// monitor record shipped by the LCM "calling itself".
//
// Run with: go run ./examples/recursion
package main

import (
	"fmt"
	"log"
	"time"

	"ntcs"
	"ntcs/internal/drts/monitor"
	"ntcs/internal/drts/timesvc"
	"ntcs/internal/ipcs/memnet"
	"ntcs/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world := sim.NewWorld()
	world.AddNetwork("ring", memnet.Options{})
	defer world.Close()
	nsHost := world.MustHost("apollo-ns", ntcs.Apollo, "ring")
	if _, err := world.StartNameServer(nsHost, "ns"); err != nil {
		return err
	}
	host := world.MustHost("vax-1", ntcs.VAX, "ring")

	// The DRTS support modules the NTCS itself will use.
	tsMod, err := world.Attach(host, "time-server", map[string]string{"role": "time"})
	if err != nil {
		return err
	}
	go timesvc.NewServer(tsMod, 200*time.Millisecond).Run()
	monMod, err := world.Attach(host, "monitor", map[string]string{"role": "monitor"})
	if err != nil {
		return err
	}
	monSrv := monitor.NewServer(monMod)
	go monSrv.Run()

	receiver, err := world.Attach(host, "receiver", nil)
	if err != nil {
		return err
	}
	go func() {
		for {
			if _, err := receiver.Recv(time.Hour); err != nil {
				return
			}
		}
	}()

	sender, err := world.Attach(host, "sender", nil)
	if err != nil {
		return err
	}
	corr := timesvc.NewCorrector(sender, "time-server", time.Minute)
	sender.SetClock(corr.Now)
	sender.SetMonitor(monitor.NewClient(sender, "monitor", 1).Record)

	u, err := sender.Locate("receiver")
	if err != nil {
		return err
	}

	fmt.Println("=== first send (monitoring and time correction enabled) ===")
	sender.Tracer().SetEnabled(true)
	sender.Tracer().Clear()
	if err := sender.Send(u, "greeting", "first contact"); err != nil {
		return err
	}
	time.Sleep(50 * time.Millisecond) // let the monitor shipping land
	fmt.Print(sender.Tracer().Tree())
	fmt.Printf("\nrecursion depth %d, %d layer entries; clock offset estimate %v\n",
		sender.Tracer().MaxDepth(), len(sender.Tracer().Events()), corr.Offset())

	fmt.Println("\n=== second send (everything warm) ===")
	sender.Tracer().Clear()
	if err := sender.Send(u, "greeting", "second contact"); err != nil {
		return err
	}
	fmt.Print(sender.Tracer().Tree())
	fmt.Printf("\nrecursion depth %d, %d layer entries\n",
		sender.Tracer().MaxDepth(), len(sender.Tracer().Events()))

	stats := monSrv.Snapshot()
	fmt.Printf("\nmonitor saw %d records from %v\n", stats.TotalRecords, monSrv.Modules())
	fmt.Println("\n\"While not bad for the traditional reason of speed (recursive calls")
	fmt.Println(" are rare under normal operation), it posed difficulties with")
	fmt.Println(" debugging and exception handling\" — §6, reproduced above.")
	return nil
}
