package ntcs_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ntcs"
	"ntcs/internal/drts/errlog"
	"ntcs/internal/ipcs/mbx"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/internal/nameserver"
	"ntcs/internal/wire"
	"ntcs/sim"
)

const tick = 2 * time.Second

// echoServe answers every call with the request body under type "echo".
func echoServe(m *ntcs.Module) {
	go func() {
		for {
			d, err := m.Recv(time.Hour)
			if err != nil {
				return
			}
			if d.IsCall() {
				var s string
				if err := d.Decode(&s); err != nil {
					_ = m.ReplyError(d, "decode: "+err.Error())
					continue
				}
				_ = m.Reply(d, "echo", "echo:"+s)
			}
		}
	}()
}

// oneNetWorld builds a single-network world with a name server.
func oneNetWorld(t *testing.T) (*sim.World, *sim.Host) {
	t.Helper()
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w, nsHost
}

func TestBootstrapRegisterLocateCall(t *testing.T) {
	w, _ := oneNetWorld(t)
	hostA := w.MustHost("vax-1", machine.VAX, "ring")
	hostB := w.MustHost("sun-1", machine.Sun68K, "ring")

	server, err := w.Attach(hostB, "searcher", map[string]string{"role": "search"})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)

	client, err := w.Attach(hostA, "host-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if client.UAdd().IsTemp() {
		t.Fatal("module still on a TAdd after Attach")
	}
	if client.UAdd() == server.UAdd() {
		t.Fatal("UAdds must be unique")
	}

	u, err := client.Locate("searcher")
	if err != nil {
		t.Fatal(err)
	}
	if u != server.UAdd() {
		t.Errorf("Locate = %v, want %v", u, server.UAdd())
	}
	var reply string
	if err := client.Call(u, "query", "find it", &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "echo:find it" {
		t.Errorf("reply = %q", reply)
	}
}

func TestLocateUnknownName(t *testing.T) {
	w, _ := oneNetWorld(t)
	host := w.MustHost("vax-1", machine.VAX, "ring")
	m, err := w.Attach(host, "lonely", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Locate("no-such-module"); !errors.Is(err, ntcs.ErrNotFound) {
		t.Errorf("got %v, want ErrNotFound", err)
	}
}

func TestTAddsPurgedEverywhereAfterAttach(t *testing.T) {
	// E-TADD / §3.4: registration is the first communication with the NS,
	// the announce the second; afterwards no layer on either side holds a
	// TAdd.
	w, _ := oneNetWorld(t)
	host := w.MustHost("vax-1", machine.VAX, "ring")
	m, err := w.Attach(host, "newborn", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Find the NS module: it is the first module the world tracked; use a
	// fresh attachment's view instead — the NS's own tables are what §3.4
	// speaks about, so grab them through the world's NS.
	if got := m.Nucleus().TAddResidue(); got != 0 {
		t.Errorf("client TAdd residue = %d, want 0", got)
	}
}

func TestNameServerTablesFreeOfTAdds(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	nsMod, err := w.StartNameServer(nsHost, "ns")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	host := w.MustHost("vax-1", machine.VAX, "ring")
	for i := 0; i < 3; i++ {
		if _, err := w.Attach(host, fmt.Sprintf("mod-%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(tick)
	for time.Now().Before(deadline) && nsMod.Nucleus().TAddResidue() != 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if got := nsMod.Nucleus().TAddResidue(); got != 0 {
		t.Errorf("NS TAdd residue after %d registrations = %d, want 0", 3, got)
	}
	if nsMod.Errors().Count(errlog.CodeTAddReplaced) < 3 {
		t.Errorf("TAdd replacements recorded = %d, want >= 3", nsMod.Errors().Count(errlog.CodeTAddReplaced))
	}
}

type telemetry struct {
	Reading  int32
	Pressure float64
	Valid    bool
	Channel  uint16
	Raw      [4]byte
	Padding  int8
}

func TestConversionModeSelection(t *testing.T) {
	// E-CONV / §5: identical (layout-compatible) machines exchange images;
	// incompatible machines exchange packed representations. Both decode
	// to the same values.
	w, _ := oneNetWorld(t)
	vax1 := w.MustHost("vax-1", machine.VAX, "ring")
	vax2 := w.MustHost("vax-2", machine.VAX, "ring")
	sun := w.MustHost("sun-1", machine.Sun68K, "ring")

	serve := func(m *ntcs.Module, modes chan wire.Mode) {
		go func() {
			for {
				d, err := m.Recv(time.Hour)
				if err != nil {
					return
				}
				modes <- d.Mode()
				var tl telemetry
				if err := d.Decode(&tl); err != nil {
					_ = m.ReplyError(d, err.Error())
					continue
				}
				_ = m.Reply(d, "ack", tl) // echo the struct back
			}
		}()
	}

	vaxSrv, err := w.Attach(vax2, "vax-server", nil)
	if err != nil {
		t.Fatal(err)
	}
	vaxModes := make(chan wire.Mode, 8)
	serve(vaxSrv, vaxModes)

	sunSrv, err := w.Attach(sun, "sun-server", nil)
	if err != nil {
		t.Fatal(err)
	}
	sunModes := make(chan wire.Mode, 8)
	serve(sunSrv, sunModes)

	client, err := w.Attach(vax1, "vax-client", nil)
	if err != nil {
		t.Fatal(err)
	}

	in := telemetry{Reading: -42, Pressure: 1013.25, Valid: true, Channel: 7, Raw: [4]byte{1, 2, 3, 4}, Padding: -1}

	// VAX → VAX: image mode (byte copy, no conversion).
	uVax, err := client.Locate("vax-server")
	if err != nil {
		t.Fatal(err)
	}
	var out telemetry
	if err := client.Call(uVax, "telemetry", in, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("VAX→VAX round trip: %+v", out)
	}
	if mode := <-vaxModes; mode != wire.ModeImage {
		t.Errorf("VAX→VAX mode = %v, want image", mode)
	}

	// VAX → Sun: packed mode (conversion applied).
	uSun, err := client.Locate("sun-server")
	if err != nil {
		t.Fatal(err)
	}
	out = telemetry{}
	if err := client.Call(uSun, "telemetry", in, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("VAX→Sun round trip: %+v", out)
	}
	if mode := <-sunModes; mode != wire.ModePacked {
		t.Errorf("VAX→Sun mode = %v, want packed", mode)
	}
}

func TestCustomConverterUsed(t *testing.T) {
	w, _ := oneNetWorld(t)
	vax := w.MustHost("vax-1", machine.VAX, "ring")
	sun := w.MustHost("sun-1", machine.Sun68K, "ring")

	server, err := w.Attach(sun, "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Application-defined transport format (§5.1: "it can be entirely
	// application dependent"): a bare decimal string.
	if err := server.RegisterConverter("count", ntcs.Converter{
		Unpack: func(data []byte, out any) error {
			p, ok := out.(*int)
			if !ok {
				return errors.New("want *int")
			}
			_, err := fmt.Sscanf(string(data), "%d", p)
			return err
		},
	}); err != nil {
		t.Fatal(err)
	}
	got := make(chan int, 1)
	go func() {
		d, err := server.Recv(time.Hour)
		if err != nil {
			return
		}
		var n int
		if err := d.Decode(&n); err != nil {
			got <- -1
			return
		}
		got <- n
	}()

	client, err := w.Attach(vax, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.RegisterConverter("count", ntcs.Converter{
		Pack: func(body any) ([]byte, error) {
			return []byte(fmt.Sprintf("%d", body)), nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(u, "count", 12345); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 12345 {
			t.Errorf("decoded %d", n)
		}
	case <-time.After(tick):
		t.Fatal("no delivery")
	}
}

func TestStaticEnvironmentLosesNothing(t *testing.T) {
	// §3.5: "the NTCS can not lose messages in a static environment."
	w, _ := oneNetWorld(t)
	a := w.MustHost("vax-1", machine.VAX, "ring")
	b := w.MustHost("vax-2", machine.VAX, "ring")

	sink, err := w.AttachConfig(b, ntcs.Config{Name: "sink", InboxSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	src, err := w.Attach(a, "source", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := src.Locate("sink")
	if err != nil {
		t.Fatal(err)
	}
	const count = 500
	for i := 0; i < count; i++ {
		if err := src.Send(u, "seq", int64(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 0; i < count; i++ {
		d, err := sink.Recv(tick)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		var n int64
		if err := d.Decode(&n); err != nil {
			t.Fatal(err)
		}
		if n != int64(i) {
			t.Fatalf("message %d arrived as %d (loss or reorder)", i, n)
		}
	}
}

func TestDynamicReconfigurationEndToEnd(t *testing.T) {
	// E-RECONF / §3.5: the searcher is replaced while the host keeps
	// calling its old address; communication transparently reaches the
	// replacement.
	w, _ := oneNetWorld(t)
	hostA := w.MustHost("vax-1", machine.VAX, "ring")
	hostB := w.MustHost("sun-1", machine.Sun68K, "ring")
	hostC := w.MustHost("apollo-1", machine.Apollo, "ring")

	gen1, err := w.Attach(hostB, "searcher", map[string]string{"role": "search"})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(gen1)

	client, err := w.Attach(hostA, "host-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("searcher")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "one", &reply); err != nil {
		t.Fatal(err)
	}

	// The searcher moves to another machine: generation 2.
	if err := gen1.Detach(); err != nil {
		t.Fatal(err)
	}
	gen2, err := w.Attach(hostC, "searcher", map[string]string{"role": "search"})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(gen2)

	// The client still uses the OLD address: §3.3 "An application module
	// need only obtain an address once; module relocation will then occur
	// as required, during all communication, transparent at this
	// interface."
	deadline := time.Now().Add(3 * time.Second)
	var callErr error
	for time.Now().Before(deadline) {
		callErr = client.Call(u, "q", "two", &reply)
		if callErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if callErr != nil {
		t.Fatalf("call after relocation: %v", callErr)
	}
	if reply != "echo:two" {
		t.Errorf("reply = %q", reply)
	}
	if client.Errors().Count(errlog.CodeForwarded) == 0 {
		t.Error("no forwarding recorded; relocation was not exercised")
	}

	// Conversion adapts too (§5: "adapts dynamically to the environment
	// as modules are relocated"): gen1 was a Sun (packed from VAX), gen2
	// an Apollo — still packed; but a VAX replacement flips to image.
	if err := gen2.Detach(); err != nil {
		t.Fatal(err)
	}
	hostD := w.MustHost("vax-9", machine.VAX, "ring")
	gen3, err := w.Attach(hostD, "searcher", map[string]string{"role": "search"})
	if err != nil {
		t.Fatal(err)
	}
	modes := make(chan wire.Mode, 8)
	go func() {
		for {
			d, err := gen3.Recv(time.Hour)
			if err != nil {
				return
			}
			modes <- d.Mode()
			var tl telemetry
			if err := d.Decode(&tl); err != nil {
				_ = gen3.ReplyError(d, err.Error())
				continue
			}
			_ = gen3.Reply(d, "ack", tl)
		}
	}()

	// The first call after the fault may still carry the stale (packed)
	// decision; once the forwarding table and cache reflect gen3, the
	// selection flips to image. "Adapts dynamically" means converges, not
	// clairvoyance.
	deadline = time.Now().Add(3 * time.Second)
	var out telemetry
	sawImage := false
	for time.Now().Before(deadline) && !sawImage {
		if err := client.Call(u, "tele", telemetry{Reading: 1}, &out); err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		select {
		case mode := <-modes:
			sawImage = mode == wire.ModeImage
		case <-time.After(tick):
			t.Fatal("no delivery at gen3")
		}
	}
	if !sawImage {
		t.Error("VAX→VAX after relocation never switched to image mode (adaptive selection)")
	}
}

func TestNameServerRemovableAfterResolution(t *testing.T) {
	// E-NSRM / §3.3: "once all necessary addresses have been resolved ...
	// the Name Server can be removed with no consequence, unless the
	// system is reconfigured."
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	nsMod, err := w.StartNameServer(nsHost, "ns")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	a := w.MustHost("vax-1", machine.VAX, "ring")
	b := w.MustHost("vax-2", machine.VAX, "ring")
	server, err := w.Attach(b, "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.Attach(a, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "warm", &reply); err != nil {
		t.Fatal(err)
	}

	// The Name Server goes away.
	if err := nsMod.Detach(); err != nil {
		t.Fatal(err)
	}

	// Ongoing communication is unaffected.
	for i := 0; i < 5; i++ {
		if err := client.Call(u, "q", "after", &reply); err != nil {
			t.Fatalf("call %d after NS removal: %v", i, err)
		}
	}
	// But new resolution fails...
	if _, err := client.Locate("server"); err == nil {
		t.Error("Locate should fail with the NS gone")
	}
	// ...and reconfiguration cannot be followed.
	_ = server.Detach()
	deadline := time.Now().Add(tick)
	var callErr error
	for time.Now().Before(deadline) {
		callErr = client.Call(u, "q", "gone", &reply)
		if callErr != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if callErr == nil {
		t.Error("calls should fail after the destination died with no NS to consult")
	}
}

func TestDetachDeregisters(t *testing.T) {
	w, _ := oneNetWorld(t)
	host := w.MustHost("vax-1", machine.VAX, "ring")
	m, err := w.Attach(host, "ephemeral", nil)
	if err != nil {
		t.Fatal(err)
	}
	watcher, err := w.Attach(host, "watcher", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := watcher.Locate("ephemeral"); err != nil {
		t.Fatal(err)
	}
	if err := m.Detach(); err != nil {
		t.Fatal(err)
	}
	if _, err := watcher.Locate("ephemeral"); !errors.Is(err, ntcs.ErrNotFound) {
		t.Errorf("Locate after Detach: %v, want ErrNotFound", err)
	}
	// Double detach is safe.
	if err := m.Detach(); err != nil {
		t.Errorf("second Detach: %v", err)
	}
}

func TestAttributeQuery(t *testing.T) {
	// E-NAME / §7: the attribute-value naming successor.
	w, _ := oneNetWorld(t)
	host := w.MustHost("vax-1", machine.VAX, "ring")
	for i := 0; i < 3; i++ {
		attrs := map[string]string{"role": "search", "shard": fmt.Sprintf("%d", i)}
		if _, err := w.Attach(host, fmt.Sprintf("searcher-%d", i), attrs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Attach(host, "indexer", map[string]string{"role": "index"}); err != nil {
		t.Fatal(err)
	}
	client, err := w.Attach(host, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := client.LocateAttrs(map[string]string{"role": "search"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("found %d searchers, want 3", len(recs))
	}
	recs, err = client.LocateAttrs(map[string]string{"role": "search", "shard": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "searcher-1" {
		t.Errorf("shard query = %+v", recs)
	}
}

func TestALIParameterChecking(t *testing.T) {
	// §2.4: the ALI-Layer "performs parameter checking" and "tailors the
	// error returns".
	w, _ := oneNetWorld(t)
	host := w.MustHost("vax-1", machine.VAX, "ring")
	m, err := w.Attach(host, "checked", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Send(0, "t", "x"); err == nil {
		t.Error("send to nil address should fail")
	}
	if err := m.Send(m.UAdd(), "", "x"); err == nil {
		t.Error("empty message type should fail")
	}
	if err := m.RegisterConverter("", ntcs.Converter{}); err == nil {
		t.Error("empty converter type should fail")
	}
	if _, err := m.Locate(""); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := ntcs.Attach(ntcs.Config{Name: ""}); err == nil {
		t.Error("attach without a name should fail")
	}
	if _, err := ntcs.Attach(ntcs.Config{Name: "x", Machine: machine.VAX}); err == nil {
		t.Error("attach without networks should fail")
	}
	if _, err := ntcs.Attach(ntcs.Config{Name: "x", Networks: nil}); err == nil {
		t.Error("attach with invalid machine should fail")
	}
}

func TestCrossNetworkThroughGateway(t *testing.T) {
	// Two disjoint networks joined by a prime gateway; the NS lives on
	// "alpha"; a module on "beta" registers, is located, and serves calls
	// — all through the chained circuits of §4.
	w := sim.NewWorld()
	w.AddNetwork("alpha", memnet.Options{})
	w.AddNetwork("beta", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "alpha")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	gwHost := w.MustHost("gw-host", machine.Apollo, "alpha", "beta")
	if _, err := w.StartGateway(gwHost, "gw-ab"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	remote := w.MustHost("sun-remote", machine.Sun68K, "beta")
	local := w.MustHost("vax-local", machine.VAX, "alpha")

	server, err := w.Attach(remote, "remote-searcher", nil)
	if err != nil {
		t.Fatalf("attach across gateway: %v", err)
	}
	echoServe(server)

	client, err := w.Attach(local, "host-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("remote-searcher")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "across", &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "echo:across" {
		t.Errorf("reply = %q", reply)
	}

	// And the reverse direction: the beta module calls back to alpha.
	u2, err := server.Locate("host-1")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		d, err := client.Recv(tick)
		if err != nil {
			done <- err
			return
		}
		done <- client.Reply(d, "r", "pong")
	}()
	var back string
	if err := server.Call(u2, "ping", "x", &back); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if back != "pong" {
		t.Errorf("reverse reply = %q", back)
	}
}

func TestOrdinaryGatewayLocatedThroughNamingService(t *testing.T) {
	// §4.1: non-prime gateways are registered with and located through
	// the naming service.
	w := sim.NewWorld()
	w.AddNetwork("alpha", memnet.Options{})
	w.AddNetwork("beta", memnet.Options{})
	w.AddNetwork("gamma", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "alpha")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	// Prime gateway alpha<->beta (preloaded)…
	gw1Host := w.MustHost("gw1-host", machine.Apollo, "alpha", "beta")
	if _, err := w.StartGateway(gw1Host, "gw-ab"); err != nil {
		t.Fatal(err)
	}
	// …and an ordinary gateway beta<->gamma, known only to the NS.
	gw2Host := w.MustHost("gw2-host", machine.Apollo, "beta", "gamma")
	gw2, err := w.StartOrdinaryGateway(gw2Host, "gw-bg")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	farHost := w.MustHost("far", machine.VAX, "gamma")
	nearHost := w.MustHost("near", machine.VAX, "alpha")

	// Hosts on gamma list gw-bg in their own well-known tables — "certain
	// 'prime' gateways" (§3.4) is per-site configuration; without it a
	// gamma module could never reach the Name Server to begin with. The
	// client on alpha has no such preload and must discover gw-bg through
	// the naming service (§4.1).
	farWK := w.WellKnown()
	farWK.Gateways = append(append([]ntcs.WellKnownEntry(nil), farWK.Gateways...), ntcs.WellKnownEntry{
		Name: gw2.Name(), UAdd: gw2.UAdd(), Endpoints: gw2.Endpoints(),
	})

	server, err := w.AttachConfig(farHost, ntcs.Config{Name: "far-server", WellKnown: farWK})
	if err != nil {
		t.Fatalf("attach on gamma: %v", err)
	}
	echoServe(server)
	client, err := w.Attach(nearHost, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("far-server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "two hops", &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "echo:two hops" {
		t.Errorf("reply = %q", reply)
	}
}

func TestPortabilityMatrix(t *testing.T) {
	// E-PORT / §7: the same application code runs unchanged over each
	// IPCS — the NTCS's central portability claim.
	build := func(t *testing.T, w *sim.World, netID string) {
		nsHost := w.MustHost("ns-host", machine.Apollo, netID)
		if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		a := w.MustHost("vax-1", machine.VAX, netID)
		b := w.MustHost("sun-1", machine.Sun68K, netID)
		server, err := w.Attach(b, "server", nil)
		if err != nil {
			t.Fatal(err)
		}
		echoServe(server)
		client, err := w.Attach(a, "client", nil)
		if err != nil {
			t.Fatal(err)
		}
		u, err := client.Locate("server")
		if err != nil {
			t.Fatal(err)
		}
		var reply string
		if err := client.Call(u, "q", "portable", &reply); err != nil {
			t.Fatal(err)
		}
		if reply != "echo:portable" {
			t.Errorf("reply = %q", reply)
		}
	}
	t.Run("memnet", func(t *testing.T) {
		w := sim.NewWorld()
		w.AddNetwork("net", memnet.Options{})
		build(t, w, "net")
	})
	t.Run("tcp", func(t *testing.T) {
		w := sim.NewWorld()
		w.AddTCPNetwork("net")
		build(t, w, "net")
	})
	t.Run("mbx", func(t *testing.T) {
		w := sim.NewWorld()
		w.AddMBXNetwork("net", mbx.Options{Capacity: 256})
		build(t, w, "net")
	})
}

func TestCrossIPCSThroughGateway(t *testing.T) {
	// The 1986 deployment's headline: processes distributed across both
	// TCP and Apollo MBX support, joined by the portable gateway.
	w := sim.NewWorld()
	w.AddTCPNetwork("tcp-net")
	w.AddMBXNetwork("mbx-net", mbx.Options{Capacity: 256})
	nsHost := w.MustHost("ns-host", machine.Apollo, "tcp-net")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	gwHost := w.MustHost("gw-host", machine.Apollo, "tcp-net", "mbx-net")
	if _, err := w.StartGateway(gwHost, "gw"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	apolloHost := w.MustHost("apollo-1", machine.Apollo, "mbx-net")
	vaxHost := w.MustHost("vax-1", machine.VAX, "tcp-net")

	server, err := w.Attach(apolloHost, "mbx-server", nil)
	if err != nil {
		t.Fatalf("attach on MBX network: %v", err)
	}
	echoServe(server)
	client, err := w.Attach(vaxHost, "tcp-client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("mbx-server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "tcp to mbx", &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "echo:tcp to mbx" {
		t.Errorf("reply = %q", reply)
	}
}

func TestReplicatedNameServerFailover(t *testing.T) {
	// E-NAME / §7: "the latter will be replicated for failure resiliency."
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	h1 := w.MustHost("ns1-host", machine.Apollo, "ring")
	h2 := w.MustHost("ns2-host", machine.Apollo, "ring")
	ns1, err := w.StartNameServer(h1, "ns-primary")
	if err != nil {
		t.Fatal(err)
	}
	ns2, err := w.StartNameServer(h2, "ns-backup")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	// Teach the servers about each other (replication links): each knows
	// the peer's record and pushes writes to it.
	ns1.DB().Insert(nameserver.Record{
		Name: ns2.Name(), UAdd: ns2.UAdd(), Endpoints: ns2.Endpoints(),
		Attrs: map[string]string{"type": "nameserver"}, Alive: true,
	})
	ns2.DB().Insert(nameserver.Record{
		Name: ns1.Name(), UAdd: ns1.UAdd(), Endpoints: ns1.Endpoints(),
		Attrs: map[string]string{"type": "nameserver"}, Alive: true,
	})
	ns1.SetNameServerReplicas([]ntcs.UAdd{ns2.UAdd()})
	ns2.SetNameServerReplicas([]ntcs.UAdd{ns1.UAdd()})

	host := w.MustHost("vax-1", machine.VAX, "ring")
	server, err := w.Attach(host, "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.Attach(host, "client", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Give replication a moment.
	deadline := time.Now().Add(tick)
	for time.Now().Before(deadline) {
		if _, err := ns2.DB().Resolve("server"); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := ns2.DB().Resolve("server"); err != nil {
		t.Fatalf("backup never learned about the registration: %v", err)
	}

	// Primary dies; resolution falls over to the backup.
	if err := ns1.Detach(); err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatalf("Locate after primary failure: %v", err)
	}
	var reply string
	if err := client.Call(u, "q", "failover", &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "echo:failover" {
		t.Errorf("reply = %q", reply)
	}
}
