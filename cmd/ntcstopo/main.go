// ntcstopo renders the paper's architecture figures (2-1 … 2-4) from a
// LIVE assembled system: it boots a two-network testbed (Name Server,
// prime gateway, an application module and a backend), then draws each
// figure populated with the real module names, UAdds, networks and
// endpoints — the figures as facts, not pictures.
//
// Usage:
//
//	ntcstopo            # all figures plus the live topology
//	ntcstopo -fig 2-2   # one figure
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ntcs/internal/core"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/internal/trace"
	"ntcs/sim"
)

func main() {
	fig := flag.String("fig", "", "figure to render: 2-1, 2-2, 2-3, 2-4, topo (default: all)")
	flag.Parse()
	if err := run(*fig); err != nil {
		fmt.Fprintln(os.Stderr, "ntcstopo:", err)
		os.Exit(1)
	}
}

type world struct {
	w       *sim.World
	ns      *core.Module
	gw      *core.Module
	host    *core.Module
	backend *core.Module
}

func boot() (*world, error) {
	w := sim.NewWorld()
	w.AddNetwork("backbone", memnet.Options{})
	w.AddNetwork("branch", memnet.Options{})
	nsHost := w.MustHost("apollo-ns", machine.Apollo, "backbone")
	ns, err := w.StartNameServer(nsHost, "ns")
	if err != nil {
		return nil, err
	}
	gwHost := w.MustHost("apollo-gw", machine.Apollo, "backbone", "branch")
	gw, err := w.StartGateway(gwHost, "gw-1")
	if err != nil {
		return nil, err
	}
	beHost := w.MustHost("vax-1", machine.VAX, "backbone")
	backend, err := w.Attach(beHost, "searcher", map[string]string{"role": "search"})
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			d, err := backend.Recv(time.Hour)
			if err != nil {
				return
			}
			if d.IsCall() {
				_ = backend.Reply(d, "r", "ok")
			}
		}
	}()
	hostHost := w.MustHost("sun-1", machine.Sun68K, "branch")
	host, err := w.Attach(hostHost, "host-1", nil)
	if err != nil {
		return nil, err
	}
	// Drive one call so the traces and circuit tables are populated —
	// from a clean trace, so the figures show application operations, not
	// the Attach-time registration.
	host.Tracer().SetEnabled(true)
	host.Tracer().Clear()
	u, err := host.Locate("searcher")
	if err != nil {
		return nil, err
	}
	var reply string
	if err := host.Call(u, "q", "x", &reply); err != nil {
		return nil, err
	}
	return &world{w: w, ns: ns, gw: gw, host: host, backend: backend}, nil
}

func run(fig string) error {
	wd, err := boot()
	if err != nil {
		return err
	}
	defer wd.w.Close()

	figs := map[string]func(*world){
		"2-1":  fig21,
		"2-2":  fig22,
		"2-3":  fig23,
		"2-4":  fig24,
		"topo": topo,
	}
	if fig != "" {
		f, ok := figs[fig]
		if !ok {
			return fmt.Errorf("unknown figure %q (2-1, 2-2, 2-3, 2-4, topo)", fig)
		}
		f(wd)
		return nil
	}
	for _, name := range []string{"2-1", "2-2", "2-3", "2-4", "topo"} {
		figs[name](wd)
		fmt.Println()
	}
	return nil
}

func fig21(w *world) {
	m := w.host
	fmt.Println("Figure 2-1 — The Application's View of the NTCS (live)")
	fmt.Printf(`
   ┌─ application module %q ──────────────┐
   │                                            │
   │       Send · Call · Recv · Locate          │
   │                   │                        │
   │   ┌─ ComMod (the NTCS, %v) ─┐   │
   │   │  the only NTCS surface the app sees │   │
   │   └──────────────────┬───────────────────┘   │
   └──────────────────────┼───────────────────────┘
                          ▼ native IPCS
`, m.Name(), m.UAdd())
	seq := m.Tracer().LayerSequence()
	fmt.Printf("   observed: every operation entered via layer %q first (trace: %v)\n", seq[0], seq)
}

func fig22(w *world) {
	m := w.host
	eps := m.Endpoints()
	fmt.Println("Figure 2-2 — The Nucleus Internal Layering (live)")
	fmt.Printf(`
   module %q
   ┌────────────────────────────────────────────┐
   │ LCM-Layer   reconfiguration, no open/close │
   │   forwarding entries: %-4d                 │
   ├────────────────────────────────────────────┤
   │ IP-Layer    internet circuits, routing     │
   │   open IVCs: %-4d                          │
   ├────────────────────────────────────────────┤
   │ ND-Layer    STD-IF local virtual circuits  │
`, m.Name(), m.Nucleus().LCM.ForwardTable().Len(), len(m.Nucleus().IP.OpenCircuits()))
	for _, ep := range eps {
		fmt.Printf("   │   %s at %q\n", ep.Network, ep.Addr)
	}
	fmt.Println(`   └────────────────────────────────────────────┘`)
	gw := w.gw
	fmt.Printf("   gateway %q binds one ND layer per network: %v\n", gw.Name(), gw.Nucleus().IP.Networks())
}

func fig23(w *world) {
	m := w.host
	fmt.Println("Figure 2-3 — The Naming Service Protocol (NSP) Layer (live)")
	fmt.Printf(`
               ALI (locate) ──┐         ┌── LCM (address faults)
                              ▼         ▼
   ┌────────────────────── NSP-Layer ──────────────────────┐
   │  the single naming access point; isolates the         │
   │  naming service implementation from the ComMod        │
   └───────────────────────────┬────────────────────────────┘
                               ▼ ordinary Nucleus calls
                     Name Server %v (module %q)
`, w.ns.UAdd(), w.ns.Name())
	fmt.Printf("   observed: %d NSP entries in %q's trace\n",
		m.Tracer().CountLayer(trace.LayerNSP), m.Name())
}

func fig24(w *world) {
	m := w.host
	fmt.Println("Figure 2-4 — The ComMod Internal Layering (live)")
	fmt.Printf(`
   module %q (%s machine)
   ┌────────────────────────────────────────────┐
   │ ALI-Layer   thin veneer: parameter checks, │
   │             tailored errors                │
   ├────────────────────────────────────────────┤
   │ NSP-Layer   naming access point            │
   ├────────────────────────────────────────────┤
   │ Nucleus     LCM / IP / ND (Figure 2-2)     │
   └────────────────────────────────────────────┘
`, m.Name(), m.Machine())
	fmt.Printf("   running error table:\n%s", indent(m.Errors().String()))
}

func topo(w *world) {
	fmt.Println("Live topology")
	mods := []*core.Module{w.ns, w.gw, w.backend, w.host}
	for _, m := range mods {
		fmt.Printf("  %-10s %v  machine=%-7s", m.Name(), m.UAdd(), m.Machine())
		for _, ep := range m.Endpoints() {
			fmt.Printf("  %s!%s", ep.Network, ep.Addr)
		}
		fmt.Println()
	}
	fmt.Println("  networks: backbone ── gw-1 ── branch (chained LVCs relay across)")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "     " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
