// ntcstopo renders the paper's architecture figures (2-1 … 2-4) from a
// LIVE assembled system: it boots a two-network testbed (Name Server,
// prime gateway, an application module and a backend), then draws each
// figure populated with the real module names, UAdds, networks and
// endpoints — the figures as facts, not pictures.
//
// It is also the topology-file tool of the deployment mode: -emit writes
// a declarative topology file (the site configuration of §3.4, one
// process per line) that the cmd binaries consume with -topo/-proc, and
// -topo FILE validates an existing file and renders the deployment it
// describes — processes, shard groups, and the derived well-known
// preload.
//
// Usage:
//
//	ntcstopo                 # all figures plus the live topology
//	ntcstopo -fig 2-2        # one figure
//	ntcstopo -emit site.topo # write the reference deployment file
//	ntcstopo -topo site.topo # validate + render a topology file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ntcs/internal/cli"
	"ntcs/internal/core"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/internal/trace"
	"ntcs/sim"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to render: 2-1, 2-2, 2-3, 2-4, topo (default: all)")
		emit     = flag.String("emit", "", "write the reference deployment topology to this file ('-' for stdout)")
		topoPath = flag.String("topo", "", "validate and render an existing topology file")
	)
	flag.Parse()
	var err error
	switch {
	case *emit != "":
		err = emitTopology(*emit)
	case *topoPath != "":
		err = renderTopology(*topoPath)
	default:
		err = run(*fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntcstopo:", err)
		os.Exit(1)
	}
}

// referenceTopology is the deployment the emitted file describes: a
// two-replica naming tier on the backbone, a prime gateway joining the
// branch network, and an echo worker — the real-process analogue of the
// figure testbed above.
const referenceTopology = `# NTCS reference deployment — consumed by:
#   nameserver -topo site.topo -proc ns0
#   nameserver -topo site.topo -proc ns1
#   gateway    -topo site.topo -proc gw1
#   ursad      -topo site.topo -proc echo-1
nameserver ns0 machine=apollo slot=0 shard=0 anti-entropy=2s bind=backbone=127.0.0.1:4001
nameserver ns1 machine=apollo slot=1 shard=0 anti-entropy=2s bind=backbone=127.0.0.1:4002
gateway    gw1 machine=apollo prime=true bind=backbone=127.0.0.1:4101,branch=127.0.0.1:4102
worker     echo-1 machine=vax role=echo networks=backbone
`

func emitTopology(path string) error {
	// Round-trip through the parser so the emitted file is, by
	// construction, a file the binaries will accept.
	if _, err := cli.ParseTopology(strings.NewReader(referenceTopology)); err != nil {
		return fmt.Errorf("reference topology invalid: %w", err)
	}
	var err error
	if path == "-" {
		_, err = os.Stdout.WriteString(referenceTopology)
		return err
	}
	return os.WriteFile(path, []byte(referenceTopology), 0o644)
}

func renderTopology(path string) error {
	topo, err := cli.ParseTopologyFile(path)
	if err != nil {
		return err
	}
	wk, err := topo.WellKnown()
	if err != nil {
		return err
	}
	fmt.Printf("topology %s: %d processes\n", path, len(topo.Procs))
	for i := range topo.Procs {
		p := &topo.Procs[i]
		fmt.Printf("  %-10s %-12s machine=%-7s", p.Kind, p.Name, p.Machine)
		if u := p.UAdd(); u != 0 {
			fmt.Printf(" uadd=%v", u)
		}
		if p.Kind == cli.ProcNameServer {
			fmt.Printf(" shard=%d", p.Shard)
			if peers := topo.NSPeers(p.Name); len(peers) > 0 {
				names := make([]string, 0, len(peers))
				for _, q := range peers {
					names = append(names, q.Name)
				}
				fmt.Printf(" replicas=%s", strings.Join(names, ","))
			}
		}
		if p.Role != "" {
			fmt.Printf(" role=%s", p.Role)
		}
		for _, b := range p.Bindings {
			if b.Addr != "" {
				fmt.Printf("  %s!%s", b.Network, b.Addr)
			} else {
				fmt.Printf("  %s!(ephemeral)", b.Network)
			}
		}
		fmt.Println()
	}
	fmt.Printf("well-known preload: %d name servers, %d prime gateways\n",
		len(wk.NameServers), len(wk.Gateways))
	for _, e := range wk.NameServers {
		fmt.Printf("  NS %-12s %v shard=%d serverID=%d\n", e.Name, e.UAdd, e.Shard, e.ServerID)
	}
	for _, e := range wk.Gateways {
		fmt.Printf("  GW %-12s %v\n", e.Name, e.UAdd)
	}
	return nil
}

type world struct {
	w       *sim.World
	ns      *core.Module
	gw      *core.Module
	host    *core.Module
	backend *core.Module
}

func boot() (*world, error) {
	w := sim.NewWorld()
	w.AddNetwork("backbone", memnet.Options{})
	w.AddNetwork("branch", memnet.Options{})
	nsHost := w.MustHost("apollo-ns", machine.Apollo, "backbone")
	ns, err := w.StartNameServer(nsHost, "ns")
	if err != nil {
		return nil, err
	}
	gwHost := w.MustHost("apollo-gw", machine.Apollo, "backbone", "branch")
	gw, err := w.StartGateway(gwHost, "gw-1")
	if err != nil {
		return nil, err
	}
	beHost := w.MustHost("vax-1", machine.VAX, "backbone")
	backend, err := w.Attach(beHost, "searcher", map[string]string{"role": "search"})
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			d, err := backend.Recv(time.Hour)
			if err != nil {
				return
			}
			if d.IsCall() {
				_ = backend.Reply(d, "r", "ok")
			}
		}
	}()
	hostHost := w.MustHost("sun-1", machine.Sun68K, "branch")
	host, err := w.Attach(hostHost, "host-1", nil)
	if err != nil {
		return nil, err
	}
	// Drive one call so the traces and circuit tables are populated —
	// from a clean trace, so the figures show application operations, not
	// the Attach-time registration.
	host.Tracer().SetEnabled(true)
	host.Tracer().Clear()
	u, err := host.Locate("searcher")
	if err != nil {
		return nil, err
	}
	var reply string
	if err := host.Call(u, "q", "x", &reply); err != nil {
		return nil, err
	}
	return &world{w: w, ns: ns, gw: gw, host: host, backend: backend}, nil
}

func run(fig string) error {
	wd, err := boot()
	if err != nil {
		return err
	}
	defer wd.w.Close()

	figs := map[string]func(*world){
		"2-1":  fig21,
		"2-2":  fig22,
		"2-3":  fig23,
		"2-4":  fig24,
		"topo": topo,
	}
	if fig != "" {
		f, ok := figs[fig]
		if !ok {
			return fmt.Errorf("unknown figure %q (2-1, 2-2, 2-3, 2-4, topo)", fig)
		}
		f(wd)
		return nil
	}
	for _, name := range []string{"2-1", "2-2", "2-3", "2-4", "topo"} {
		figs[name](wd)
		fmt.Println()
	}
	return nil
}

func fig21(w *world) {
	m := w.host
	fmt.Println("Figure 2-1 — The Application's View of the NTCS (live)")
	fmt.Printf(`
   ┌─ application module %q ──────────────┐
   │                                            │
   │       Send · Call · Recv · Locate          │
   │                   │                        │
   │   ┌─ ComMod (the NTCS, %v) ─┐   │
   │   │  the only NTCS surface the app sees │   │
   │   └──────────────────┬───────────────────┘   │
   └──────────────────────┼───────────────────────┘
                          ▼ native IPCS
`, m.Name(), m.UAdd())
	seq := m.Tracer().LayerSequence()
	fmt.Printf("   observed: every operation entered via layer %q first (trace: %v)\n", seq[0], seq)
}

func fig22(w *world) {
	m := w.host
	eps := m.Endpoints()
	fmt.Println("Figure 2-2 — The Nucleus Internal Layering (live)")
	fmt.Printf(`
   module %q
   ┌────────────────────────────────────────────┐
   │ LCM-Layer   reconfiguration, no open/close │
   │   forwarding entries: %-4d                 │
   ├────────────────────────────────────────────┤
   │ IP-Layer    internet circuits, routing     │
   │   open IVCs: %-4d                          │
   ├────────────────────────────────────────────┤
   │ ND-Layer    STD-IF local virtual circuits  │
`, m.Name(), m.Nucleus().LCM.ForwardTable().Len(), len(m.Nucleus().IP.OpenCircuits()))
	for _, ep := range eps {
		fmt.Printf("   │   %s at %q\n", ep.Network, ep.Addr)
	}
	fmt.Println(`   └────────────────────────────────────────────┘`)
	gw := w.gw
	fmt.Printf("   gateway %q binds one ND layer per network: %v\n", gw.Name(), gw.Nucleus().IP.Networks())
}

func fig23(w *world) {
	m := w.host
	fmt.Println("Figure 2-3 — The Naming Service Protocol (NSP) Layer (live)")
	fmt.Printf(`
               ALI (locate) ──┐         ┌── LCM (address faults)
                              ▼         ▼
   ┌────────────────────── NSP-Layer ──────────────────────┐
   │  the single naming access point; isolates the         │
   │  naming service implementation from the ComMod        │
   └───────────────────────────┬────────────────────────────┘
                               ▼ ordinary Nucleus calls
                     Name Server %v (module %q)
`, w.ns.UAdd(), w.ns.Name())
	fmt.Printf("   observed: %d NSP entries in %q's trace\n",
		m.Tracer().CountLayer(trace.LayerNSP), m.Name())
}

func fig24(w *world) {
	m := w.host
	fmt.Println("Figure 2-4 — The ComMod Internal Layering (live)")
	fmt.Printf(`
   module %q (%s machine)
   ┌────────────────────────────────────────────┐
   │ ALI-Layer   thin veneer: parameter checks, │
   │             tailored errors                │
   ├────────────────────────────────────────────┤
   │ NSP-Layer   naming access point            │
   ├────────────────────────────────────────────┤
   │ Nucleus     LCM / IP / ND (Figure 2-2)     │
   └────────────────────────────────────────────┘
`, m.Name(), m.Machine())
	fmt.Printf("   running error table:\n%s", indent(m.Errors().String()))
}

func topo(w *world) {
	fmt.Println("Live topology")
	mods := []*core.Module{w.ns, w.gw, w.backend, w.host}
	for _, m := range mods {
		fmt.Printf("  %-10s %v  machine=%-7s", m.Name(), m.UAdd(), m.Machine())
		for _, ep := range m.Endpoints() {
			fmt.Printf("  %s!%s", ep.Network, ep.Addr)
		}
		fmt.Println()
	}
	fmt.Println("  networks: backbone ── gw-1 ── branch (chained LVCs relay across)")
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "     " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		lines = append(lines, cur)
	}
	return lines
}
