// nameserver runs a standalone NTCS Name Server over TCP, for
// multi-process deployments. Other processes preload its address with
// their -ns flag (the "well known" configuration of paper §3.4).
//
// Example:
//
//	nameserver -bind backbone=127.0.0.1:4001
//	gateway    -bind backbone=127.0.0.1:4101,branch=127.0.0.1:4102 \
//	           -ns backbone=127.0.0.1:4001
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ntcs/internal/addr"
	"ntcs/internal/cli"
	"ntcs/internal/core"
	"ntcs/internal/machine"
)

func main() {
	var (
		bind     = flag.String("bind", "backbone=127.0.0.1:4001", "network=host:port bindings, comma separated")
		name     = flag.String("name", "ns", "logical module name")
		machName = flag.String("machine", "apollo", "simulated machine type (vax, sun68k, apollo, pyramid)")
	)
	flag.Parse()
	if err := run(*bind, *name, *machName); err != nil {
		fmt.Fprintln(os.Stderr, "nameserver:", err)
		os.Exit(1)
	}
}

func run(bind, name, machName string) error {
	m, err := machine.ParseType(machName)
	if err != nil {
		return err
	}
	bindings, err := cli.ParseBindings(bind)
	if err != nil {
		return err
	}
	nets, hints := cli.OpenNetworks(bindings)

	mod, err := core.Attach(core.Config{
		Name:          name,
		Machine:       m,
		Networks:      nets,
		EndpointHints: hints,
		Kind:          core.KindNameServer,
		FixedUAdd:     addr.NameServer,
		ServerID:      1,
	})
	if err != nil {
		return err
	}
	defer mod.Detach()

	for _, ep := range mod.Endpoints() {
		fmt.Printf("name server %q serving %v on %s at %s\n", name, mod.UAdd(), ep.Network, ep.Addr)
	}
	fmt.Println("pass to other modules:  -ns", nsFlagValue(mod))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}

func nsFlagValue(mod *core.Module) string {
	out := ""
	for i, ep := range mod.Endpoints() {
		if i > 0 {
			out += ","
		}
		out += ep.Network + "=" + ep.Addr
	}
	return out
}
