// nameserver runs a standalone NTCS Name Server over TCP, for
// multi-process deployments. Other processes preload its address with
// their -ns flag (the "well known" configuration of paper §3.4).
//
// A server occupies one well-known slot (-slot, 0-15): its UAdd is
// NameServer+slot and its generated UAdds carry slot+1 as the server
// identifier, which is what routes UAdd-keyed requests back to it in a
// sharded deployment. Replica peers (-peers) receive every write and
// are reconciled by anti-entropy (-anti-entropy); dead records are
// garbage collected after -tombstone-ttl.
//
// Example, a two-replica group:
//
//	nameserver -bind backbone=127.0.0.1:4001 -slot 0 \
//	           -peers 1@backbone=127.0.0.1:4002 -anti-entropy 5s
//	nameserver -bind backbone=127.0.0.1:4002 -slot 1 \
//	           -peers 0@backbone=127.0.0.1:4001 -anti-entropy 5s
//	gateway    -bind backbone=127.0.0.1:4101,branch=127.0.0.1:4102 \
//	           -ns backbone=127.0.0.1:4001
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ntcs/internal/addr"
	"ntcs/internal/cli"
	"ntcs/internal/core"
	"ntcs/internal/machine"
	"ntcs/internal/nameserver"
)

func main() {
	var (
		bind        = flag.String("bind", "backbone=127.0.0.1:4001", "network=host:port bindings, comma separated")
		name        = flag.String("name", "ns", "logical module name")
		machName    = flag.String("machine", "apollo", "simulated machine type (vax, sun68k, apollo, pyramid)")
		slot        = flag.Int("slot", 0, "well-known name server slot (0-15); UAdd = NameServer+slot")
		peers       = flag.String("peers", "", "replica peers, slot@network=host:port[,network=host:port] joined by ';'")
		peerMach    = flag.String("peer-machine", "", "peer hosts' machine type (defaults to -machine)")
		antiEntropy = flag.Duration("anti-entropy", 0, "digest reconciliation interval with one peer per tick (0 = off)")
		tombTTL     = flag.Duration("tombstone-ttl", 0, "retain dead records (and their forwarding) this long (0 = forever)")
		maxHandlers = flag.Int("max-handlers", 0, "bound on concurrent request handlers (0 = default, negative = unbounded)")
		topoPath    = flag.String("topo", "", "topology file; boots this process's entry instead of the hand flags")
		proc        = flag.String("proc", "", "process name within -topo (defaults to -name)")
		httpAddr    = flag.String("http", "", "serve /stats, /stats.json, expvar and pprof on this address (off when empty)")
		drainT      = flag.Duration("drain-timeout", 5*time.Second, "bound on the SIGTERM graceful drain")
	)
	flag.Parse()
	if err := run(config{
		bind: *bind, name: *name, machName: *machName, slot: *slot,
		peers: *peers, peerMach: *peerMach,
		antiEntropy: *antiEntropy, tombTTL: *tombTTL, maxHandlers: *maxHandlers,
		topoPath: *topoPath, proc: *proc, httpAddr: *httpAddr, drainT: *drainT,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "nameserver:", err)
		os.Exit(1)
	}
}

type config struct {
	bind, name, machName string
	slot                 int
	peers, peerMach      string
	antiEntropy, tombTTL time.Duration
	maxHandlers          int
	topoPath, proc       string
	httpAddr             string
	drainT               time.Duration
}

type peer struct {
	uadd      addr.UAdd
	endpoints []addr.Endpoint
}

// parsePeers parses "1@backbone=127.0.0.1:4002;2@backbone=127.0.0.1:4003":
// each peer is its well-known slot plus its bindings.
func parsePeers(spec string, m machine.Type) ([]peer, error) {
	if spec == "" {
		return nil, nil
	}
	var out []peer
	for _, part := range strings.Split(spec, ";") {
		slotStr, bindSpec, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("peer %q is not slot@bindings", part)
		}
		n, err := strconv.Atoi(slotStr)
		if err != nil || n < 0 || n > int(addr.NameServerLimit-addr.NameServer) {
			return nil, fmt.Errorf("peer %q: bad slot %q", part, slotStr)
		}
		bindings, err := cli.ParseBindings(bindSpec)
		if err != nil {
			return nil, fmt.Errorf("peer %q: %w", part, err)
		}
		p := peer{uadd: addr.NameServer + addr.UAdd(n)}
		for _, b := range bindings {
			if b.Addr == "" {
				return nil, fmt.Errorf("peer %q: binding %q needs an explicit address", part, b.Network)
			}
			p.endpoints = append(p.endpoints, addr.Endpoint{Network: b.Network, Addr: b.Addr, Machine: m})
		}
		out = append(out, p)
	}
	return out, nil
}

// serve prints the ready line, waits for a signal, and shuts down:
// SIGTERM drains gracefully (deregister, quiesce, flush — the record's
// tombstone keeps §3.5 forwarding intact), SIGINT detaches directly.
func serve(rt *cli.ProcRuntime, drainT time.Duration) error {
	fmt.Println(rt.ReadyLine())
	if cli.WaitSignals() == syscall.SIGTERM {
		if err := rt.Drain(drainT); err != nil {
			fmt.Fprintln(os.Stderr, "nameserver: drain:", err)
		}
		fmt.Println(rt.DrainedLine())
		return nil
	}
	rt.Close()
	fmt.Println("shutting down")
	return nil
}

func run(cfg config) error {
	if cfg.topoPath != "" {
		proc := cfg.proc
		if proc == "" {
			proc = cfg.name
		}
		rt, err := cli.StartProc(cli.ProcOptions{
			TopoPath: cfg.topoPath, Proc: proc,
			HTTPAddr: cfg.httpAddr, DrainTimeout: cfg.drainT,
		})
		if err != nil {
			return err
		}
		return serve(rt, cfg.drainT)
	}
	m, err := machine.ParseType(cfg.machName)
	if err != nil {
		return err
	}
	if cfg.slot < 0 || cfg.slot > int(addr.NameServerLimit-addr.NameServer) {
		return fmt.Errorf("slot %d outside the well-known range 0-%d", cfg.slot, int(addr.NameServerLimit-addr.NameServer))
	}
	pm := m
	if cfg.peerMach != "" {
		if pm, err = machine.ParseType(cfg.peerMach); err != nil {
			return err
		}
	}
	peerList, err := parsePeers(cfg.peers, pm)
	if err != nil {
		return err
	}
	bindings, err := cli.ParseBindings(cfg.bind)
	if err != nil {
		return err
	}
	nets, hints := cli.OpenNetworks(bindings)

	mod, err := core.Attach(core.Config{
		Name:           cfg.name,
		Machine:        m,
		Networks:       nets,
		EndpointHints:  hints,
		Kind:           core.KindNameServer,
		FixedUAdd:      addr.NameServer + addr.UAdd(cfg.slot),
		ServerID:       uint16(cfg.slot + 1),
		NSAntiEntropy:  cfg.antiEntropy,
		NSTombstoneTTL: cfg.tombTTL,
		NSMaxHandlers:  cfg.maxHandlers,
	})
	if err != nil {
		return err
	}

	// Seed the peer records (so this server's own Nucleus can reach them)
	// and enable write propagation; anti-entropy reconciles the rest.
	if len(peerList) > 0 {
		uadds := make([]addr.UAdd, 0, len(peerList))
		for _, p := range peerList {
			mod.DB().Insert(nameserver.Record{
				Name:      fmt.Sprintf("ns%d", uint64(p.uadd-addr.NameServer)),
				UAdd:      p.uadd,
				Attrs:     map[string]string{"type": "nameserver"},
				Endpoints: p.endpoints,
				Alive:     true,
			})
			uadds = append(uadds, p.uadd)
		}
		mod.SetNameServerReplicas(uadds)
	}

	for _, ep := range mod.Endpoints() {
		fmt.Printf("name server %q serving %v on %s at %s\n", cfg.name, mod.UAdd(), ep.Network, ep.Addr)
	}
	fmt.Println("pass to other modules:  -ns", nsFlagValue(mod))

	rt, err := cli.NewRuntime(mod, cfg.httpAddr)
	if err != nil {
		return err
	}
	return serve(rt, cfg.drainT)
}

func nsFlagValue(mod *core.Module) string {
	out := ""
	for i, ep := range mod.Endpoints() {
		if i > 0 {
			out += ","
		}
		out += ep.Network + "=" + ep.Addr
	}
	return out
}
