// ursad boots the full URSA demonstration system — Name Server, gateway,
// index/search/document backends on heterogeneous machines — and serves
// interactive queries from stdin.
//
// Usage:
//
//	ursad [-docs 200] [-seed 1] [-http 127.0.0.1:7171] [-hist]
//	> distributed system
//	> information retrieval
//	> :quit
//
// With -http the daemon serves its per-module metrics (text at /stats,
// JSON at /stats.json for ntcsstat, expvar at /debug/vars) and the pprof
// profile endpoints; -hist additionally turns on the latency-histogram
// tier for every module.
//
// With -topo FILE -proc NAME the daemon instead becomes one worker
// process of a real multi-process deployment: it boots that topology
// entry over real TCP sockets, bootstraps against the remote Name
// Server, serves its role (role=echo answers calls with "echo:"+body),
// and drains gracefully on SIGTERM.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"syscall"
	"time"

	"ntcs"
	"ntcs/internal/cli"
	"ntcs/internal/drts/monitor"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/stats/statshttp"
	"ntcs/internal/ursa"
	"ntcs/sim"
)

func main() {
	var (
		docs     = flag.Int("docs", 0, "synthetic corpus size (0 = built-in corpus)")
		seed     = flag.Int64("seed", 1, "corpus generator seed")
		httpAddr = flag.String("http", "", "serve /stats, expvar and pprof on this address (off when empty)")
		hist     = flag.Bool("hist", false, "enable the latency-histogram tier on every module")
		topoPath = flag.String("topo", "", "topology file; run as one worker process of a real deployment instead of the in-process demo")
		proc     = flag.String("proc", "", "process name within -topo")
		drainT   = flag.Duration("drain-timeout", 5*time.Second, "bound on the SIGTERM graceful drain")
	)
	flag.Parse()
	var err error
	if *topoPath != "" {
		err = runWorker(*topoPath, *proc, *httpAddr, *drainT)
	} else {
		err = run(*docs, *seed, *httpAddr, *hist)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ursad:", err)
		os.Exit(1)
	}
}

// runWorker boots one worker entry of a topology file as this OS
// process: TAdd bootstrap against the remote Name Server over real TCP,
// then serve by role until a signal arrives. SIGTERM drains gracefully
// (deregister — the tombstone keeps §3.5 forwarding intact — quiesce,
// flush, close); SIGINT exits directly.
func runWorker(topoPath, proc, httpAddr string, drainT time.Duration) error {
	rt, err := cli.StartProc(cli.ProcOptions{
		TopoPath: topoPath, Proc: proc, HTTPAddr: httpAddr, DrainTimeout: drainT,
	})
	if err != nil {
		return err
	}
	if rt.Entry.Role == "echo" {
		go echoServe(rt.Mod)
	}
	fmt.Println(rt.ReadyLine())
	if cli.WaitSignals() == syscall.SIGTERM {
		if err := rt.Drain(drainT); err != nil {
			fmt.Fprintln(os.Stderr, "ursad: drain:", err)
		}
		fmt.Println(rt.DrainedLine())
		return nil
	}
	rt.Close()
	fmt.Println("shutting down")
	return nil
}

// echoServe answers every Call with "echo:"+body — the workload module
// the process harness measures recovery against.
func echoServe(m *ntcs.Module) {
	for {
		d, err := m.Recv(time.Hour)
		if err != nil {
			return
		}
		if !d.IsCall() {
			continue
		}
		var s string
		if err := d.Decode(&s); err != nil {
			_ = m.ReplyError(d, "decode: "+err.Error())
			continue
		}
		_ = m.Reply(d, "echo", "echo:"+s)
	}
}

func run(docCount int, seed int64, httpAddr string, hist bool) error {
	world := sim.NewWorld()
	world.AddNetwork("machine-room", memnet.Options{})
	world.AddNetwork("office-ring", memnet.Options{})
	defer world.Close()

	nsHost := world.MustHost("apollo-ns", ntcs.Apollo, "machine-room")
	if _, err := world.StartNameServer(nsHost, "ns"); err != nil {
		return err
	}
	gwHost := world.MustHost("apollo-gw", ntcs.Apollo, "machine-room", "office-ring")
	if _, err := world.StartGateway(gwHost, "gw"); err != nil {
		return err
	}

	monHost := world.MustHost("apollo-mon", ntcs.Apollo, "machine-room")
	monMod, err := world.Attach(monHost, "monitor", map[string]string{"role": "monitor"})
	if err != nil {
		return err
	}
	monSrv := monitor.NewServer(monMod)
	go monSrv.Run()

	idxHost := world.MustHost("apollo-1", ntcs.Apollo, "machine-room")
	docHost := world.MustHost("vax-1", ntcs.VAX, "machine-room")
	searchHost := world.MustHost("sun-1", ntcs.Sun68K, "machine-room")
	dep, err := ursa.Deploy(world, idxHost, docHost, searchHost)
	if err != nil {
		return err
	}

	hostHost := world.MustHost("sun-desk", ntcs.Sun68K, "office-ring")
	hostMod, err := world.Attach(hostHost, "host-1", nil)
	if err != nil {
		return err
	}
	// Monitoring on: every host send is recorded (§6.1 recursion, live).
	hostMod.SetMonitor(monitor.NewClient(hostMod, "monitor", 8).Record)
	client := ursa.NewClient(hostMod)

	if hist {
		for _, m := range world.Modules() {
			m.Stats().SetHistograms(true)
		}
	}
	if httpAddr != "" {
		srv, bound, err := statshttp.Serve(httpAddr, world.Snapshots)
		if err != nil {
			return fmt.Errorf("stats listener: %w", err)
		}
		defer srv.Close()
		fmt.Printf("stats on http://%s/stats (ntcsstat -addr %s; pprof at /debug/pprof/)\n", bound, bound)
	}

	corpus := ursa.BuiltinCorpus()
	if docCount > 0 {
		corpus = ursa.GenerateCorpus(docCount, seed)
	}
	if err := client.Ingest(corpus); err != nil {
		return err
	}
	fmt.Printf("URSA up: %d documents, %d terms; host on office-ring, backends in the machine room\n",
		len(corpus), dep.Index.Terms())
	fmt.Println(`type a query, ":stats" for monitor counters, ":quit" to exit`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ":quit", line == ":q":
			return nil
		case line == ":stats":
			stats := monSrv.Snapshot()
			fmt.Printf("monitor: %d records, %d bytes; by kind %v\n",
				stats.TotalRecords, stats.TotalBytes, stats.ByKind)
			continue
		}
		reply, err := client.Search(line, 5)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if len(reply.Hits) == 0 {
			fmt.Println("no hits")
			continue
		}
		for _, h := range reply.Hits {
			fmt.Printf("  doc %-3d score %-6d %s\n", h.DocID, h.Score, h.Title)
		}
	}
	return sc.Err()
}
