// ursad boots the full URSA demonstration system — Name Server, gateway,
// index/search/document backends on heterogeneous machines — and serves
// interactive queries from stdin.
//
// Usage:
//
//	ursad [-docs 200] [-seed 1] [-http 127.0.0.1:7171] [-hist]
//	> distributed system
//	> information retrieval
//	> :quit
//
// With -http the daemon serves its per-module metrics (text at /stats,
// JSON at /stats.json for ntcsstat, expvar at /debug/vars) and the pprof
// profile endpoints; -hist additionally turns on the latency-histogram
// tier for every module.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"ntcs"
	"ntcs/internal/drts/monitor"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/stats/statshttp"
	"ntcs/internal/ursa"
	"ntcs/sim"
)

func main() {
	var (
		docs     = flag.Int("docs", 0, "synthetic corpus size (0 = built-in corpus)")
		seed     = flag.Int64("seed", 1, "corpus generator seed")
		httpAddr = flag.String("http", "", "serve /stats, expvar and pprof on this address (off when empty)")
		hist     = flag.Bool("hist", false, "enable the latency-histogram tier on every module")
	)
	flag.Parse()
	if err := run(*docs, *seed, *httpAddr, *hist); err != nil {
		fmt.Fprintln(os.Stderr, "ursad:", err)
		os.Exit(1)
	}
}

func run(docCount int, seed int64, httpAddr string, hist bool) error {
	world := sim.NewWorld()
	world.AddNetwork("machine-room", memnet.Options{})
	world.AddNetwork("office-ring", memnet.Options{})
	defer world.Close()

	nsHost := world.MustHost("apollo-ns", ntcs.Apollo, "machine-room")
	if _, err := world.StartNameServer(nsHost, "ns"); err != nil {
		return err
	}
	gwHost := world.MustHost("apollo-gw", ntcs.Apollo, "machine-room", "office-ring")
	if _, err := world.StartGateway(gwHost, "gw"); err != nil {
		return err
	}

	monHost := world.MustHost("apollo-mon", ntcs.Apollo, "machine-room")
	monMod, err := world.Attach(monHost, "monitor", map[string]string{"role": "monitor"})
	if err != nil {
		return err
	}
	monSrv := monitor.NewServer(monMod)
	go monSrv.Run()

	idxHost := world.MustHost("apollo-1", ntcs.Apollo, "machine-room")
	docHost := world.MustHost("vax-1", ntcs.VAX, "machine-room")
	searchHost := world.MustHost("sun-1", ntcs.Sun68K, "machine-room")
	dep, err := ursa.Deploy(world, idxHost, docHost, searchHost)
	if err != nil {
		return err
	}

	hostHost := world.MustHost("sun-desk", ntcs.Sun68K, "office-ring")
	hostMod, err := world.Attach(hostHost, "host-1", nil)
	if err != nil {
		return err
	}
	// Monitoring on: every host send is recorded (§6.1 recursion, live).
	hostMod.SetMonitor(monitor.NewClient(hostMod, "monitor", 8).Record)
	client := ursa.NewClient(hostMod)

	if hist {
		for _, m := range world.Modules() {
			m.Stats().SetHistograms(true)
		}
	}
	if httpAddr != "" {
		srv, bound, err := statshttp.Serve(httpAddr, world.Snapshots)
		if err != nil {
			return fmt.Errorf("stats listener: %w", err)
		}
		defer srv.Close()
		fmt.Printf("stats on http://%s/stats (ntcsstat -addr %s; pprof at /debug/pprof/)\n", bound, bound)
	}

	corpus := ursa.BuiltinCorpus()
	if docCount > 0 {
		corpus = ursa.GenerateCorpus(docCount, seed)
	}
	if err := client.Ingest(corpus); err != nil {
		return err
	}
	fmt.Printf("URSA up: %d documents, %d terms; host on office-ring, backends in the machine room\n",
		len(corpus), dep.Index.Terms())
	fmt.Println(`type a query, ":stats" for monitor counters, ":quit" to exit`)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == ":quit", line == ":q":
			return nil
		case line == ":stats":
			stats := monSrv.Snapshot()
			fmt.Printf("monitor: %d records, %d bytes; by kind %v\n",
				stats.TotalRecords, stats.TotalBytes, stats.ByKind)
			continue
		}
		reply, err := client.Search(line, 5)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if len(reply.Hits) == 0 {
			fmt.Println("no hits")
			continue
		}
		for _, h := range reply.Hits {
			fmt.Printf("  doc %-3d score %-6d %s\n", h.DocID, h.Score, h.Title)
		}
	}
	return sc.Err()
}
