// gateway runs a standalone NTCS gateway joining two or more TCP
// networks — "the same Gateway module ... used for all networks and
// machines" (paper §4.1). It registers itself with the Name Server so
// other modules discover the topology through the naming service.
//
// Example:
//
//	gateway -bind backbone=127.0.0.1:4101,branch=127.0.0.1:4102 \
//	        -ns backbone=127.0.0.1:4001 -prime
//
// In a config-driven deployment the same process boots from a topology
// file instead: gateway -topo site.topo -proc gw1. SIGTERM drains
// gracefully (deregister, quiesce, flush); SIGINT exits directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"syscall"
	"time"

	"ntcs/internal/addr"
	"ntcs/internal/cli"
	"ntcs/internal/core"
	"ntcs/internal/machine"
)

func main() {
	var (
		bind     = flag.String("bind", "", "network=host:port bindings (two or more), comma separated")
		ns       = flag.String("ns", "", "Name Server endpoints: network=host:port, comma separated")
		name     = flag.String("name", "gw", "logical gateway name")
		machName = flag.String("machine", "apollo", "simulated machine type")
		nsMach   = flag.String("ns-machine", "apollo", "the Name Server host's machine type")
		prime    = flag.Bool("prime", true, "claim a well-known prime gateway UAdd (§3.4)")
		topoPath = flag.String("topo", "", "topology file; boots this process's entry instead of the hand flags")
		proc     = flag.String("proc", "", "process name within -topo (defaults to -name)")
		httpAddr = flag.String("http", "", "serve /stats, /stats.json, expvar and pprof on this address (off when empty)")
		drainT   = flag.Duration("drain-timeout", 5*time.Second, "bound on the SIGTERM graceful drain")
	)
	flag.Parse()
	if err := run(*bind, *ns, *name, *machName, *nsMach, *prime, *topoPath, *proc, *httpAddr, *drainT); err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		os.Exit(1)
	}
}

// serve prints the ready line, waits for a signal, and shuts down:
// SIGTERM drains gracefully, SIGINT detaches directly.
func serve(rt *cli.ProcRuntime, drainT time.Duration) error {
	fmt.Println(rt.ReadyLine())
	if cli.WaitSignals() == syscall.SIGTERM {
		if err := rt.Drain(drainT); err != nil {
			fmt.Fprintln(os.Stderr, "gateway: drain:", err)
		}
		fmt.Println(rt.DrainedLine())
		return nil
	}
	rt.Close()
	fmt.Println("shutting down")
	return nil
}

func run(bind, ns, name, machName, nsMach string, prime bool, topoPath, proc, httpAddr string, drainT time.Duration) error {
	if topoPath != "" {
		if proc == "" {
			proc = name
		}
		rt, err := cli.StartProc(cli.ProcOptions{
			TopoPath: topoPath, Proc: proc, HTTPAddr: httpAddr, DrainTimeout: drainT,
		})
		if err != nil {
			return err
		}
		return serve(rt, drainT)
	}

	m, err := machine.ParseType(machName)
	if err != nil {
		return err
	}
	bindings, err := cli.ParseBindings(bind)
	if err != nil {
		return err
	}
	if len(bindings) < 2 {
		return fmt.Errorf("a gateway must join at least two networks")
	}
	wk, err := cli.ParseWellKnown(ns, nsMach)
	if err != nil {
		return err
	}
	nets, hints := cli.OpenNetworks(bindings)

	cfg := core.Config{
		Name:          name,
		Machine:       m,
		Networks:      nets,
		EndpointHints: hints,
		WellKnown:     wk,
		Kind:          core.KindGateway,
	}
	if prime {
		cfg.FixedUAdd = addr.PrimeGatewayBase
	}
	mod, err := core.Attach(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("gateway %q up as %v joining:\n", name, mod.UAdd())
	for _, ep := range mod.Endpoints() {
		fmt.Printf("  %s at %s\n", ep.Network, ep.Addr)
	}

	rt, err := cli.NewRuntime(mod, httpAddr)
	if err != nil {
		return err
	}
	return serve(rt, drainT)
}
