// gateway runs a standalone NTCS gateway joining two or more TCP
// networks — "the same Gateway module ... used for all networks and
// machines" (paper §4.1). It registers itself with the Name Server so
// other modules discover the topology through the naming service.
//
// Example:
//
//	gateway -bind backbone=127.0.0.1:4101,branch=127.0.0.1:4102 \
//	        -ns backbone=127.0.0.1:4001 -prime
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ntcs/internal/addr"
	"ntcs/internal/cli"
	"ntcs/internal/core"
	"ntcs/internal/machine"
)

func main() {
	var (
		bind     = flag.String("bind", "", "network=host:port bindings (two or more), comma separated")
		ns       = flag.String("ns", "", "Name Server endpoints: network=host:port, comma separated")
		name     = flag.String("name", "gw", "logical gateway name")
		machName = flag.String("machine", "apollo", "simulated machine type")
		nsMach   = flag.String("ns-machine", "apollo", "the Name Server host's machine type")
		prime    = flag.Bool("prime", true, "claim a well-known prime gateway UAdd (§3.4)")
	)
	flag.Parse()
	if err := run(*bind, *ns, *name, *machName, *nsMach, *prime); err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		os.Exit(1)
	}
}

func run(bind, ns, name, machName, nsMach string, prime bool) error {
	m, err := machine.ParseType(machName)
	if err != nil {
		return err
	}
	bindings, err := cli.ParseBindings(bind)
	if err != nil {
		return err
	}
	if len(bindings) < 2 {
		return fmt.Errorf("a gateway must join at least two networks")
	}
	wk, err := cli.ParseWellKnown(ns, nsMach)
	if err != nil {
		return err
	}
	nets, hints := cli.OpenNetworks(bindings)

	cfg := core.Config{
		Name:          name,
		Machine:       m,
		Networks:      nets,
		EndpointHints: hints,
		WellKnown:     wk,
		Kind:          core.KindGateway,
	}
	if prime {
		cfg.FixedUAdd = addr.PrimeGatewayBase
	}
	mod, err := core.Attach(cfg)
	if err != nil {
		return err
	}
	defer mod.Detach()

	fmt.Printf("gateway %q up as %v joining:\n", name, mod.UAdd())
	for _, ep := range mod.Endpoints() {
		fmt.Printf("  %s at %s\n", ep.Network, ep.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
