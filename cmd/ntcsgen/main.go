// ntcsgen generates NTCS pack/unpack routines directly from message
// structure definitions — the automatic code generating mechanism of
// paper §5.1 (Schlegel [22]). The generated functions produce byte
// streams identical to the reflection-based pack.Marshal, without
// reflection, and plug into the ComMod as application converters.
//
// Usage:
//
//	ntcsgen -file internal/ursa/ursa.go -pkg ursa \
//	        -types Document,SearchRequest,SearchReply -out packgen.go
package main

import (
	"flag"
	"fmt"
	"go/format"
	"os"
	"strings"

	"ntcs/internal/gen"
)

func main() {
	var (
		file  = flag.String("file", "", "Go source file holding the message structs")
		types = flag.String("types", "", "comma-separated struct type names")
		pkg   = flag.String("pkg", "", "package name for the generated file")
		out   = flag.String("out", "", "output path (default: stdout)")
	)
	flag.Parse()
	if err := run(*file, *types, *pkg, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ntcsgen:", err)
		os.Exit(1)
	}
}

func run(file, types, pkg, out string) error {
	if file == "" || types == "" || pkg == "" {
		return fmt.Errorf("-file, -types and -pkg are required")
	}
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	code, err := gen.Generate(src, pkg, strings.Split(types, ","))
	if err != nil {
		return err
	}
	formatted, err := format.Source(code)
	if err != nil {
		return fmt.Errorf("generated code does not format (generator bug): %w", err)
	}
	if out == "" {
		_, err = os.Stdout.Write(formatted)
		return err
	}
	return os.WriteFile(out, formatted, 0o644)
}
