// ntcsstat fetches and renders the observability snapshot of a running
// NTCS daemon (start one with `ursad -http 127.0.0.1:7171`).
//
// Usage:
//
//	ntcsstat [-addr 127.0.0.1:7171] [-module name] [-json] [-watch 2s]
//
// The default output is the same sorted text dump the daemon's /stats
// endpoint serves: one stanza per module, counters then gauges then
// latency histograms (histograms appear once the daemon enables that
// tier, e.g. `ursad -hist`). -watch re-fetches on an interval, the
// poor-operator's top(1) for a Nucleus.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"ntcs/internal/stats"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7171", "daemon stats address (ursad -http)")
		module = flag.String("module", "", "show only this module's stanza")
		asJSON = flag.Bool("json", false, "emit raw JSON snapshots")
		watch  = flag.Duration("watch", 0, "re-fetch on this interval (0 = once)")
	)
	flag.Parse()

	for {
		if err := dump(*addr, *module, *asJSON); err != nil {
			fmt.Fprintln(os.Stderr, "ntcsstat:", err)
			os.Exit(1)
		}
		if *watch <= 0 {
			return
		}
		time.Sleep(*watch)
		fmt.Printf("--- %s\n", time.Now().Format(time.TimeOnly))
	}
}

func dump(addr, module string, asJSON bool) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + addr + "/stats.json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("daemon answered %s", resp.Status)
	}
	var snaps []stats.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		return fmt.Errorf("decoding /stats.json: %w", err)
	}
	if module != "" {
		kept := snaps[:0]
		for _, s := range snaps {
			if s.Module == module {
				kept = append(kept, s)
			}
		}
		snaps = kept
		if len(snaps) == 0 {
			return fmt.Errorf("daemon has no module %q", module)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snaps)
	}
	for _, s := range snaps {
		if _, err := stats.WriteSnapshot(os.Stdout, s); err != nil {
			return err
		}
	}
	return nil
}
