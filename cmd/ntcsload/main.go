// ntcsload is the open-loop serving driver: N simulated users replay
// Poisson-arrival query traffic against sharded URSA backends behind a
// gateway, over real tcpnet, and the tool reports achieved throughput
// and coordinated-omission-free p50/p99/p999.
//
// Usage:
//
//	ntcsload -users 1000 -rate 2000 -duration 10s
//	ntcsload -sweep               # double the rate until saturation
//	ntcsload -poller-shards 1     # pin the tcpnet poller (0 = default)
//	ntcsload -json                # machine-readable windows on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ntcs/internal/experiments"
	"ntcs/internal/ipcs/tcpnet"
)

func main() {
	var (
		shards   = flag.Int("shards", 2, "URSA backend shard groups")
		users    = flag.Int("users", 200, "simulated users (independent Poisson streams)")
		conns    = flag.Int("conns", 0, "client modules users multiplex onto (0 = min(users, 16))")
		docs     = flag.Int("docs", 200, "corpus documents per shard")
		rate     = flag.Float64("rate", 500, "aggregate offered load, queries/sec")
		duration = flag.Duration("duration", 5*time.Second, "measured window length")
		sweep    = flag.Bool("sweep", false, "double the rate from -rate until saturation")
		keepUp   = flag.Float64("keepup", 0.90, "sweep: achieved/offered ratio that counts as keeping up")
		pollers  = flag.Int("poller-shards", 0, "pin tcpnet poller shards (0 = default min(GOMAXPROCS, 8))")
		seed     = flag.Int64("seed", 1, "corpus/query/arrival seed")
		inflight = flag.Int("max-inflight", 4096, "outstanding-request bound; excess arrivals are shed")
		asJSON   = flag.Bool("json", false, "emit measured windows as JSON on stdout")
	)
	flag.Parse()

	if err := run(*shards, *users, *conns, *docs, *rate, *duration, *sweep, *keepUp, *pollers, *seed, *inflight, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "ntcsload:", err)
		os.Exit(1)
	}
}

func run(shards, users, conns, docs int, rate float64, duration time.Duration, sweep bool, keepUp float64, pollers int, seed int64, inflight int, asJSON bool) error {
	if pollers != 0 {
		if err := tcpnet.SetPollerShards(pollers); err != nil {
			return err
		}
	}
	cfg := experiments.ServeConfig{
		Shards:      shards,
		Users:       users,
		Conns:       conns,
		Docs:        docs,
		Seed:        seed,
		MaxInFlight: inflight,
	}
	if !asJSON {
		cfg.Out = os.Stderr
	}
	sw, err := experiments.BuildServeWorld(cfg)
	if err != nil {
		return err
	}
	defer sw.Close()

	var windows []experiments.ServeResult
	if sweep {
		windows, err = sw.Saturate(rate, keepUp, duration, 10)
	} else {
		var r experiments.ServeResult
		r, err = sw.Run(rate, duration)
		windows = append(windows, r)
	}
	if err != nil {
		return err
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"gomaxprocs":    runtime.GOMAXPROCS(0),
			"poller_shards": tcpnet.PollerShards(),
			"windows":       windows,
		})
	}
	fmt.Printf("%10s %10s %8s %6s %6s %9s %9s %9s\n",
		"offered", "achieved", "ok", "err", "shed", "p50", "p99", "p999")
	for _, r := range windows {
		fmt.Printf("%10.0f %10.0f %8d %6d %6d %8dµs %8dµs %8dµs\n",
			r.OfferedQPS, r.AchievedQPS, r.Completed, r.Errors, r.Shed, r.P50us, r.P99us, r.P999us)
	}
	if sweep {
		fmt.Printf("saturation: %.0f qps (poller shards %d, GOMAXPROCS %d)\n",
			experiments.SaturationQPS(windows, keepUp), tcpnet.PollerShards(), runtime.GOMAXPROCS(0))
	}
	return nil
}
