// ntcsbench regenerates the repository's experiment tables: every
// quantified claim of the paper's evaluation (see DESIGN.md §4 and
// EXPERIMENTS.md), printed in one run.
//
// Usage:
//
//	ntcsbench            # run every experiment
//	ntcsbench -list      # list experiment names
//	ntcsbench -run NAME  # run one experiment
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"ntcs/internal/experiments"
)

var registry = map[string]func(io.Writer) error{
	"shift":       experiments.ShiftVsPackedHeaders,
	"conv":        experiments.ConversionModes,
	"conv-ablate": experiments.AdaptiveVsAlwaysPacked,
	"hops":        experiments.GatewayHops,
	"firstsend":   experiments.FirstSendVsWarm,
	"reconf":      experiments.RelocationBlackout,
	"nscache":     experiments.ResolutionCache,
	"port":        experiments.PortabilityMatrix,
	"route":       experiments.RouteComputation,
	"ursa":        experiments.URSAThroughput,
	"serve":       experiments.URSAServe,
}

func main() {
	list := flag.Bool("list", false, "list experiment names")
	run := flag.String("run", "", "run a single experiment by name")
	flag.Parse()

	if err := dispatch(*list, *run); err != nil {
		fmt.Fprintln(os.Stderr, "ntcsbench:", err)
		os.Exit(1)
	}
}

func dispatch(list bool, run string) error {
	if list {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}
	if run != "" {
		exp, ok := registry[run]
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", run)
		}
		return exp(os.Stdout)
	}
	return experiments.RunAll(os.Stdout)
}
