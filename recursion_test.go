package ntcs_test

import (
	"strings"
	"testing"
	"time"

	"ntcs"
	"ntcs/internal/drts/monitor"
	"ntcs/internal/drts/timesvc"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/internal/trace"
	"ntcs/sim"
)

// drtsWorld assembles the full §6.1 environment: name server, time
// server, monitor, a receiver, and a sender with both DRTS couplings
// enabled.
func drtsWorld(t *testing.T) (sender, receiver *ntcs.Module, corr *timesvc.Corrector, monSrv *monitor.Server) {
	t.Helper()
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	host := w.MustHost("vax-1", machine.VAX, "ring")

	tsMod, err := w.Attach(host, "time-server", map[string]string{"role": "time"})
	if err != nil {
		t.Fatal(err)
	}
	go timesvc.NewServer(tsMod, 250*time.Millisecond).Run()

	monMod, err := w.Attach(host, "monitor", map[string]string{"role": "monitor"})
	if err != nil {
		t.Fatal(err)
	}
	monSrv = monitor.NewServer(monMod)
	go monSrv.Run()

	receiver, err = w.Attach(host, "receiver", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := receiver.Recv(time.Hour); err != nil {
				return
			}
		}
	}()

	sender, err = w.Attach(host, "sender", nil)
	if err != nil {
		t.Fatal(err)
	}
	corr = timesvc.NewCorrector(sender, "time-server", time.Minute)
	sender.SetClock(corr.Now)
	monClient := monitor.NewClient(sender, "monitor", 1)
	sender.SetMonitor(monClient.Record)
	return sender, receiver, corr, monSrv
}

func TestFirstSendRecursionScenario(t *testing.T) {
	// E-RECUR / §6.1: "sending a message to a destination for the first
	// time, with monitoring and time correction enabled" triggers the
	// documented cascade: the time primitive recursively calls the ComMod
	// (locating its support module first), the naming service is consulted
	// recursively for the actual send, and on success the monitor data is
	// shipped by the LCM "calling itself".
	sender, receiver, corr, monSrv := drtsWorld(t)

	u, err := sender.Locate("receiver")
	if err != nil {
		t.Fatal(err)
	}
	sender.Tracer().SetEnabled(true)
	sender.Tracer().Clear()

	if err := sender.Send(u, "greeting", "first contact"); err != nil {
		t.Fatal(err)
	}

	// The time primitive ran (and located its module through the ComMod).
	if corr.Syncs() != 1 {
		t.Errorf("time corrector syncs = %d, want 1", corr.Syncs())
	}
	// The monitor received the record of the send.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && monSrv.Snapshot().ByModule["sender"] == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := monSrv.Snapshot().ByModule["sender"]; got == 0 {
		t.Error("monitor never received the send record")
	}

	tr := sender.Tracer()
	// The recursion is visible: ALI entered more than once (the original
	// send, plus the recursive locate/call of the time service and the
	// monitor shipping)...
	if got := tr.CountLayer(trace.LayerALI); got < 3 {
		t.Errorf("ALI entries = %d, want >= 3 (recursive ComMod use)\n%s", got, tr.Tree())
	}
	// ...as is the nesting: the DRTS calls run inside the original send.
	if got := tr.MaxDepth(); got < 4 {
		t.Errorf("max recursion depth = %d, want >= 4\n%s", got, tr.Tree())
	}
	// The NSP layer was consulted recursively (time-server location).
	if got := tr.CountLayer(trace.LayerNSP); got < 1 {
		t.Errorf("NSP entries = %d, want >= 1", got)
	}

	// The warm path is dramatically simpler: "recursive calls are rare
	// under normal operation."
	firstDepth := tr.MaxDepth()
	firstEvents := len(tr.Events())
	tr.Clear()
	if err := sender.Send(u, "greeting", "second contact"); err != nil {
		t.Fatal(err)
	}
	if warm := tr.MaxDepth(); warm >= firstDepth {
		t.Errorf("warm-send depth %d not shallower than first-send depth %d", warm, firstDepth)
	}
	if warmEvents := len(tr.Events()); warmEvents >= firstEvents {
		t.Errorf("warm-send events %d not fewer than first-send events %d", warmEvents, firstEvents)
	}
	_ = receiver
}

func TestFigure21ApplicationsView(t *testing.T) {
	// F2-1: "the ComMod is the only aspect of the NTCS visible to the
	// application. To the application, the ComMod is the NTCS." Every
	// application operation enters through the ALI layer first.
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	host := w.MustHost("vax-1", machine.VAX, "ring")
	server, err := w.Attach(host, "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.Attach(host, "client", nil)
	if err != nil {
		t.Fatal(err)
	}

	client.Tracer().SetEnabled(true)
	client.Tracer().Clear()
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "x", &reply); err != nil {
		t.Fatal(err)
	}
	seq := client.Tracer().LayerSequence()
	if len(seq) == 0 || seq[0] != trace.LayerALI {
		t.Errorf("first layer entered = %v, want ali\n%s", seq, client.Tracer().Tree())
	}
	for _, ev := range client.Tracer().Events() {
		if ev.Depth == 0 && ev.Layer != trace.LayerALI {
			t.Errorf("outermost entry into %s.%s bypassed the ALI veneer", ev.Layer, ev.Op)
		}
	}
}

func TestFigure22NucleusLayering(t *testing.T) {
	// F2-2: a send traverses LCM → IP → ND in order.
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	host := w.MustHost("vax-1", machine.VAX, "ring")
	server, err := w.Attach(host, "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := w.Attach(host, "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	client.Tracer().SetEnabled(true)
	client.Tracer().Clear()
	if err := client.Send(u, "t", "x"); err != nil {
		t.Fatal(err)
	}
	_ = server

	var order []trace.Layer
	seen := map[trace.Layer]bool{}
	for _, ev := range client.Tracer().Events() {
		switch ev.Layer {
		case trace.LayerLCM, trace.LayerIP, trace.LayerND:
			if !seen[ev.Layer] {
				seen[ev.Layer] = true
				order = append(order, ev.Layer)
			}
		}
	}
	want := []trace.Layer{trace.LayerLCM, trace.LayerIP, trace.LayerND}
	if len(order) != 3 {
		t.Fatalf("layer entries = %v, want lcm, ip, nd\n%s", order, client.Tracer().Tree())
	}
	for i, l := range want {
		if order[i] != l {
			t.Errorf("traversal[%d] = %v, want %v (Figure 2-2 order)", i, order[i], l)
		}
	}
	// Nesting: IP inside LCM, ND inside IP.
	depths := map[trace.Layer]int{}
	for _, ev := range client.Tracer().Events() {
		if _, seen := depths[ev.Layer]; !seen {
			depths[ev.Layer] = ev.Depth
		}
	}
	if !(depths[trace.LayerLCM] < depths[trace.LayerIP] && depths[trace.LayerIP] < depths[trace.LayerND]) {
		t.Errorf("nesting depths lcm=%d ip=%d nd=%d violate Figure 2-2",
			depths[trace.LayerLCM], depths[trace.LayerIP], depths[trace.LayerND])
	}
}

func TestFigure23NSPFunnel(t *testing.T) {
	// F2-3: the NSP layer is the single naming access point — consulted
	// from above (the ALI resource location primitives) and from below
	// (the LCM address-fault handler).
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	hostA := w.MustHost("vax-1", machine.VAX, "ring")
	hostB := w.MustHost("vax-2", machine.VAX, "ring")
	gen1, err := w.Attach(hostA, "server", map[string]string{"role": "srv"})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(gen1)
	client, err := w.Attach(hostA, "client", nil)
	if err != nil {
		t.Fatal(err)
	}

	// From above: Locate.
	client.Tracer().SetEnabled(true)
	client.Tracer().Clear()
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	if got := client.Tracer().CountOp(trace.LayerNSP, "resolve"); got != 1 {
		t.Errorf("resolve through NSP = %d, want 1", got)
	}
	var reply string
	if err := client.Call(u, "q", "warm", &reply); err != nil {
		t.Fatal(err)
	}

	// From below: relocation forces the LCM fault handler through the NSP.
	_ = gen1.Detach()
	gen2, err := w.Attach(hostB, "server", map[string]string{"role": "srv"})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(gen2)
	client.Tracer().SetEnabled(true)
	client.Tracer().Clear()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if err := client.Call(u, "q", "again", &reply); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := client.Tracer().CountOp(trace.LayerNSP, "forward"); got < 1 {
		t.Errorf("forward through NSP = %d, want >= 1 (the LCM consults the funnel)\n%s",
			got, client.Tracer().Tree())
	}
}

func TestFigure24ComModVeneer(t *testing.T) {
	// F2-4: the ALI layer "may be better described as a thin veneer" —
	// parameter checking happens there, without entering deeper layers.
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	host := w.MustHost("vax-1", machine.VAX, "ring")
	m, err := w.Attach(host, "veneer", nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Tracer().SetEnabled(true)
	m.Tracer().Clear()
	if err := m.Send(0, "t", "x"); err == nil {
		t.Fatal("nil destination must be rejected")
	}
	if err := m.Send(m.UAdd(), "", "x"); err == nil {
		t.Fatal("empty type must be rejected")
	}
	for _, ev := range m.Tracer().Events() {
		if ev.Layer != trace.LayerALI {
			t.Errorf("parameter check leaked into %s.%s", ev.Layer, ev.Op)
		}
	}
	// And the trace renders a readable tree (the §6.2 aid).
	if err := m.Send(0, "t", "x"); err == nil {
		t.Fatal("unexpected success")
	}
	tree := m.Tracer().Tree()
	if !strings.Contains(tree, "ali.send") {
		t.Errorf("tree missing veneer entries:\n%s", tree)
	}
}
