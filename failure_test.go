package ntcs_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ntcs"
	"ntcs/internal/drts/errlog"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/sim"
)

// TestGatewayFailureTeardown is E-GWFAIL (§4.3) at the full-system level:
// the gateway between two networks dies mid-conversation; circuits tear
// down back to the originator; a replacement gateway registered through
// the naming service restores communication (route recomputation).
func TestGatewayFailureTeardown(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("alpha", memnet.Options{})
	w.AddNetwork("beta", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "alpha")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	gw1Host := w.MustHost("gw1-host", machine.Apollo, "alpha", "beta")
	gw1, err := w.StartGateway(gw1Host, "gw-main")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	server, err := w.Attach(w.MustHost("beta-host", machine.VAX, "beta"), "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.Attach(w.MustHost("alpha-host", machine.VAX, "alpha"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "before", &reply); err != nil {
		t.Fatal(err)
	}

	// The gateway dies.
	if err := gw1.Detach(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(tick)
	var failErr error
	for time.Now().Before(deadline) {
		failErr = client.Call(u, "q", "during", &reply)
		if failErr != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if failErr == nil {
		t.Fatal("calls kept succeeding with the only gateway dead")
	}

	// A standby gateway comes up, registered only with the naming
	// service. The client's stale route is invalidated on failure and
	// the topology re-read.
	gw2Host := w.MustHost("gw2-host", machine.Apollo, "alpha", "beta")
	if _, err := w.StartOrdinaryGateway(gw2Host, "gw-standby"); err != nil {
		t.Fatal(err)
	}
	client.NSP().InvalidateGatewayCache()
	client.Nucleus().IP.InvalidateRoutes()

	deadline = time.Now().Add(3 * time.Second)
	var okErr error
	for time.Now().Before(deadline) {
		okErr = client.Call(u, "q", "after", &reply)
		if okErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if okErr != nil {
		t.Fatalf("calls never recovered through the standby gateway: %v", okErr)
	}
	if reply != "echo:after" {
		t.Errorf("reply = %q", reply)
	}
	if client.Errors().Count(errlog.CodeIVCTorn) == 0 && client.Errors().Count(errlog.CodeAddressFault) == 0 {
		t.Error("no teardown or fault recorded at the originator")
	}
}

// TestNetworkPartitionAndHeal breaks the whole network mid-conversation
// and verifies the §3.5 "still alive" path: the modules did not move, so
// after the heal the LCM simply reconnects.
func TestNetworkPartitionAndHeal(t *testing.T) {
	w := sim.NewWorld()
	net := w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	server, err := w.Attach(w.MustHost("vax-1", machine.VAX, "ring"), "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.Attach(w.MustHost("vax-2", machine.VAX, "ring"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "pre", &reply); err != nil {
		t.Fatal(err)
	}

	net.SetDown(true)
	if err := client.Call(u, "q", "partitioned", &reply); err == nil {
		t.Fatal("call should fail during the partition")
	}
	net.SetDown(false)
	echoServe(server) // its serve loop may have exited with the break

	deadline := time.Now().Add(3 * time.Second)
	var healErr error
	for time.Now().Before(deadline) {
		healErr = client.Call(u, "q", "healed", &reply)
		if healErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if healErr != nil {
		t.Fatalf("calls never recovered after the heal: %v", healErr)
	}
	if reply != "echo:healed" {
		t.Errorf("reply = %q", reply)
	}
}

// TestLossyNetworkDegradesWithoutWedging injects message loss under live
// traffic: some calls fail (the NTCS does not retransmit — reliability
// is the substrate's job in the paper's design), none wedge, and the
// system returns to full health when the loss stops.
func TestLossyNetworkDegradesWithoutWedging(t *testing.T) {
	w := sim.NewWorld()
	net := w.AddNetwork("ring", memnet.Options{Seed: 11})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	server, err := w.AttachConfig(w.MustHost("vax-1", machine.VAX, "ring"),
		ntcs.Config{Name: "server"})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.AttachConfig(w.MustHost("vax-2", machine.VAX, "ring"),
		ntcs.Config{Name: "client", CallTimeout: 150 * time.Millisecond, OpenTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "warm", &reply); err != nil {
		t.Fatal(err)
	}

	net.SetLossProb(0.10)
	ok, failed := 0, 0
	for i := 0; i < 60; i++ {
		if err := client.Call(u, "q", fmt.Sprintf("lossy-%d", i), &reply); err != nil {
			failed++
		} else {
			ok++
		}
	}
	net.SetLossProb(0)
	if ok == 0 {
		t.Error("no call survived 10% loss")
	}
	t.Logf("under 10%% loss: %d ok, %d failed", ok, failed)

	// Full health afterwards.
	echoServe(server)
	deadline := time.Now().Add(3 * time.Second)
	var cleanErr error
	for time.Now().Before(deadline) {
		cleanErr = client.Call(u, "q", "clean", &reply)
		if cleanErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if cleanErr != nil {
		t.Fatalf("system wedged after loss stopped: %v", cleanErr)
	}
}

// TestInboxOverflowDropsVisibly floods a receiver with a tiny inbox: the
// overflow is dropped (never blocks the network layers) and recorded in
// the running error table (§6.3).
func TestInboxOverflowDropsVisibly(t *testing.T) {
	w, _ := oneNetWorld(t)
	recv, err := w.AttachConfig(w.MustHost("vax-1", machine.VAX, "ring"),
		ntcs.Config{Name: "tiny", InboxSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	sender, err := w.Attach(w.MustHost("vax-2", machine.VAX, "ring"), "flood", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sender.Locate("tiny")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := sender.Send(u, "burst", int64(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(tick)
	for time.Now().Before(deadline) && recv.Errors().Count(errlog.CodeDroppedMsg) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if recv.Errors().Count(errlog.CodeDroppedMsg) == 0 {
		t.Error("overflow not recorded")
	}
	// The receiver still works: drain what survived.
	got := 0
	for {
		if _, err := recv.Recv(100 * time.Millisecond); err != nil {
			break
		}
		got++
	}
	if got == 0 {
		t.Error("nothing delivered at all")
	}
}

// TestConcurrentClientsOneServer drives one server from many clients at
// once: ordering per client holds and nothing deadlocks.
func TestConcurrentClientsOneServer(t *testing.T) {
	w, _ := oneNetWorld(t)
	server, err := w.AttachConfig(w.MustHost("srv", machine.VAX, "ring"),
		ntcs.Config{Name: "server", InboxSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		host := w.MustHost(fmt.Sprintf("cli-%d", c), machine.VAX, "ring")
		mod, err := w.Attach(host, fmt.Sprintf("client-%d", c), nil)
		if err != nil {
			t.Fatal(err)
		}
		u, err := mod.Locate("server")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				msg := fmt.Sprintf("c%d-%d", c, i)
				var reply string
				if err := mod.Call(u, "q", msg, &reply); err != nil {
					t.Errorf("client %d call %d: %v", c, i, err)
					return
				}
				if reply != "echo:"+msg {
					t.Errorf("client %d call %d: reply %q", c, i, reply)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestRelocationUnderConcurrentLoad relocates the server while several
// clients hammer it: every client recovers, total disruption is bounded.
func TestRelocationUnderConcurrentLoad(t *testing.T) {
	w, _ := oneNetWorld(t)
	h1 := w.MustHost("vax-1", machine.VAX, "ring")
	h2 := w.MustHost("vax-2", machine.VAX, "ring")
	gen1, err := w.AttachConfig(h1, ntcs.Config{Name: "server", Attrs: map[string]string{"role": "s"}, InboxSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(gen1)

	const clients = 4
	mods := make([]*ntcs.Module, clients)
	addrs := make([]ntcs.UAdd, clients)
	for c := 0; c < clients; c++ {
		mod, err := w.Attach(w.MustHost(fmt.Sprintf("c-%d", c), machine.VAX, "ring"), fmt.Sprintf("client-%d", c), nil)
		if err != nil {
			t.Fatal(err)
		}
		u, err := mod.Locate("server")
		if err != nil {
			t.Fatal(err)
		}
		mods[c], addrs[c] = mod, u
	}

	// Progress-based phases (wall-clock windows starve under load): each
	// client must reach okTarget successes; the relocation happens once
	// everyone has made some progress.
	const okTarget = 10
	stop := make(chan struct{})
	type result struct {
		ok, failed atomic.Int64
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var reply string
				if err := mods[c].Call(addrs[c], "q", "x", &reply); err != nil {
					results[c].failed.Add(1)
					time.Sleep(5 * time.Millisecond)
				} else {
					results[c].ok.Add(1)
				}
			}
		}(c)
	}

	waitProgress := func(min int64) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			done := true
			for c := 0; c < clients; c++ {
				if results[c].ok.Load() < min {
					done = false
					break
				}
			}
			if done {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("clients never reached %d successes each", min)
	}

	waitProgress(3)
	before := make([]int64, clients)
	for c := range before {
		before[c] = results[c].ok.Load()
	}
	if err := gen1.Detach(); err != nil {
		t.Fatal(err)
	}
	gen2, err := w.AttachConfig(h2, ntcs.Config{Name: "server", Attrs: map[string]string{"role": "s"}, InboxSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(gen2)
	waitProgress(okTarget)
	close(stop)
	wg.Wait()

	for c := 0; c < clients; c++ {
		if got := results[c].ok.Load(); got < okTarget {
			t.Errorf("client %d: only %d successful calls (failed %d)", c, got, results[c].failed.Load())
		}
	}
	// Every client ended up talking to gen2: one more call each.
	for c := 0; c < clients; c++ {
		var reply string
		deadline := time.Now().Add(tick)
		var err error
		for time.Now().Before(deadline) {
			if err = mods[c].Call(addrs[c], "q", "final", &reply); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Errorf("client %d final call: %v", c, err)
		}
	}
}

// TestCallTimeoutSurfacesCleanly: a server that never answers produces a
// timeout error, not a hang, and late replies are absorbed.
func TestCallTimeoutSurfacesCleanly(t *testing.T) {
	w, _ := oneNetWorld(t)
	if _, err := w.Attach(w.MustHost("vax-1", machine.VAX, "ring"), "mute", nil); err != nil {
		t.Fatal(err)
	}
	client, err := w.AttachConfig(w.MustHost("vax-2", machine.VAX, "ring"),
		ntcs.Config{Name: "client", CallTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("mute")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var reply string
	err = client.Call(u, "q", "anyone?", &reply)
	if !errors.Is(err, ntcs.ErrCallTimeout) {
		t.Fatalf("got %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

// TestGatewayFailoverAutomatic is the self-healing counterpart of
// TestGatewayFailureTeardown: the standby gateway is already registered
// when the prime gateway crashes (abruptly — its naming record stays
// alive), and the client recovers with NO manual cache invalidation. The
// IP-Layer's failover loop must exclude the dead hop, re-read the
// topology, and re-route through the standby on its own (§4.3).
func TestGatewayFailoverAutomatic(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("alpha", memnet.Options{})
	w.AddNetwork("beta", memnet.Options{})
	if _, err := w.StartNameServer(w.MustHost("ns-host", machine.Apollo, "alpha"), "ns"); err != nil {
		t.Fatal(err)
	}
	gw1, err := w.StartGateway(w.MustHost("gw1-host", machine.Apollo, "alpha", "beta"), "gw-main")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartOrdinaryGateway(w.MustHost("gw2-host", machine.Apollo, "alpha", "beta"), "gw-standby"); err != nil {
		t.Fatal(err)
	}

	server, err := w.Attach(w.MustHost("beta-host", machine.VAX, "beta"), "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.Attach(w.MustHost("alpha-host", machine.VAX, "alpha"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "before", &reply); err != nil {
		t.Fatal(err)
	}

	// The prime gateway crashes without deregistering: the topology still
	// lists it, so failover must learn it is dead the hard way.
	gw1.Kill()

	deadline := time.Now().Add(5 * time.Second)
	var callErr error
	for time.Now().Before(deadline) {
		callErr = client.Call(u, "q", "after", &reply)
		if callErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if callErr != nil {
		t.Fatalf("calls never re-routed through the standby gateway: %v", callErr)
	}
	if reply != "echo:after" {
		t.Errorf("reply = %q", reply)
	}
}

// TestNameServerReplicaRotation kills the primary Name Server abruptly
// and verifies the NSP-Layer rotates to the configured replica — and
// stays there (sticky preference), so later requests skip the dead
// primary entirely.
func TestNameServerReplicaRotation(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsPrimary, err := w.StartNameServer(w.MustHost("ns1-host", machine.Apollo, "ring"), "ns-primary")
	if err != nil {
		t.Fatal(err)
	}
	nsReplica, err := w.StartNameServer(w.MustHost("ns2-host", machine.Apollo, "ring"), "ns-replica")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	server, err := w.Attach(w.MustHost("vax-1", machine.VAX, "ring"), "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.Attach(w.MustHost("vax-2", machine.VAX, "ring"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Replication must deliver the server's record to the replica before
	// the primary dies, or rotation has nothing to answer from.
	deadline := time.Now().Add(tick)
	for time.Now().Before(deadline) {
		if _, err := nsReplica.DB().Resolve("server"); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := nsReplica.DB().Resolve("server"); err != nil {
		t.Fatalf("replica never learned about the registration: %v", err)
	}

	if got := client.NSP().PreferredServer(); got != nsPrimary.UAdd() {
		t.Fatalf("preferred server before the crash = %v, want primary %v", got, nsPrimary.UAdd())
	}

	// The primary crashes without deregistering.
	nsPrimary.Kill()

	u, err := client.Locate("server")
	if err != nil {
		t.Fatalf("Locate after primary crash: %v", err)
	}
	var reply string
	if err := client.Call(u, "q", "rotated", &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "echo:rotated" {
		t.Errorf("reply = %q", reply)
	}
	if got := client.NSP().PreferredServer(); got != nsReplica.UAdd() {
		t.Errorf("preferred server after rotation = %v, want replica %v", got, nsReplica.UAdd())
	}

	// Sticky preference: the next naming request must not re-pay the dead
	// primary's failure before reaching the replica.
	start := time.Now()
	if _, err := client.Locate("server"); err != nil {
		t.Fatalf("Locate via sticky replica: %v", err)
	}
	if elapsed := time.Since(start); elapsed > tick {
		t.Errorf("sticky rotation still took %v", elapsed)
	}
}
