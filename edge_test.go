package ntcs_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ntcs"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/lcm"
	"ntcs/internal/machine"
	"ntcs/internal/wire"
	"ntcs/sim"
)

// TestReplyFallsBackToRoutedSend: the circuit a call arrived on dies
// before the reply; the LCM falls back to a routed send to the caller's
// UAdd.
func TestReplyFallsBackToRoutedSend(t *testing.T) {
	w, _ := oneNetWorld(t)
	server, err := w.Attach(w.MustHost("vax-1", machine.VAX, "ring"), "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := w.AttachConfig(w.MustHost("vax-2", machine.VAX, "ring"),
		ntcs.Config{Name: "client", CallTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		d, err := server.Recv(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		// Sever the arriving circuit before replying: the server's ND
		// drops every LVC to the client.
		for _, b := range server.Nucleus().Bindings {
			b.Drop(d.Src())
		}
		done <- server.Reply(d, "r", "made it anyway")
	}()

	var reply string
	if err := client.Call(u, "q", "x", &reply); err != nil {
		t.Fatalf("call: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server reply: %v", err)
	}
	if reply != "made it anyway" {
		t.Errorf("reply = %q", reply)
	}
}

// TestNDChurn opens and drops circuits from many goroutines while traffic
// flows: the circuit tables stay consistent and the system ends healthy.
func TestNDChurn(t *testing.T) {
	w, _ := oneNetWorld(t)
	server, err := w.AttachConfig(w.MustHost("vax-1", machine.VAX, "ring"),
		ntcs.Config{Name: "server", InboxSize: 2048})
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.Attach(w.MustHost("vax-2", machine.VAX, "ring"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	firstDrop := make(chan struct{})
	// Churner: keeps killing the client's circuits. The callers below
	// only start once the first drop landed, so every call runs against
	// live churn rather than racing the churner's warm-up.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			client.Nucleus().IP.DropCircuits(u)
			for _, b := range client.Nucleus().Bindings {
				b.Drop(u)
			}
			if i == 0 {
				close(firstDrop)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	<-firstDrop
	// Callers: bounded work, so the test ends when they do — no fixed
	// sleep to race against on a loaded machine.
	var okCount, failCount int
	var mu sync.Mutex
	var callers sync.WaitGroup
	for g := 0; g < 4; g++ {
		callers.Add(1)
		go func(g int) {
			defer callers.Done()
			for i := 0; i < 60; i++ {
				var reply string
				msg := fmt.Sprintf("g%d-%d", g, i)
				err := client.Call(u, "q", msg, &reply)
				mu.Lock()
				if err != nil {
					failCount++
				} else {
					okCount++
					if reply != "echo:"+msg {
						t.Errorf("wrong reply %q for %q", reply, msg)
					}
				}
				mu.Unlock()
			}
		}(g)
	}
	callers.Wait()
	close(stop)
	wg.Wait()
	if okCount == 0 {
		t.Fatal("no call survived the churn")
	}
	t.Logf("churn: %d ok, %d failed", okCount, failCount)
	// Healthy afterwards.
	var reply string
	if err := client.Call(u, "q", "final", &reply); err != nil {
		t.Fatalf("post-churn call: %v", err)
	}
}

// TestLargePayloadThroughGateway pushes a 1MB body across a chained
// circuit.
func TestLargePayloadThroughGateway(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("alpha", memnet.Options{})
	w.AddNetwork("beta", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "alpha")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	gwHost := w.MustHost("gw-host", machine.Apollo, "alpha", "beta")
	if _, err := w.StartGateway(gwHost, "gw"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	server, err := w.Attach(w.MustHost("beta-big", machine.VAX, "beta"), "big-server", nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			d, err := server.Recv(time.Hour)
			if err != nil {
				return
			}
			if d.IsCall() {
				var b []byte
				if err := d.Decode(&b); err != nil {
					_ = server.ReplyError(d, err.Error())
					continue
				}
				_ = server.Reply(d, "r", b)
			}
		}
	}()
	client, err := w.Attach(w.MustHost("alpha-big", machine.VAX, "alpha"), "big-client", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("big-server")
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 13)
	}
	var out []byte
	if err := client.Call(u, "q", big, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(big) {
		t.Fatalf("got %d bytes back", len(out))
	}
	for i := range big {
		if out[i] != big[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

// TestServiceSendSuppressesHooks: DRTS traffic sent with ServiceSend is
// flagged as service, is never monitored (the §6.1 recursion guard), and
// is visible as such to the receiver.
func TestServiceSendSuppressesHooks(t *testing.T) {
	w, _ := oneNetWorld(t)
	recv, err := w.Attach(w.MustHost("vax-1", machine.VAX, "ring"), "recv", nil)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := w.Attach(w.MustHost("vax-2", machine.VAX, "ring"), "sender", nil)
	if err != nil {
		t.Fatal(err)
	}
	recorded := 0
	sender.SetMonitor(func(lcm.Event) { recorded++ })
	u, err := sender.Locate("recv")
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.ServiceSend(u, "svc", "internal"); err != nil {
		t.Fatal(err)
	}
	d, err := recv.Recv(tick)
	if err != nil {
		t.Fatal(err)
	}
	var s string
	if err := d.Decode(&s); err != nil || s != "internal" {
		t.Errorf("decode: %q %v", s, err)
	}
	if recorded != 0 {
		t.Errorf("service send was monitored %d times", recorded)
	}
	// An ordinary send IS monitored.
	if err := sender.Send(u, "app", "visible"); err != nil {
		t.Fatal(err)
	}
	if recorded != 1 {
		t.Errorf("ordinary send monitored %d times, want 1", recorded)
	}
}

// TestModeByteVisibleToReceiver: the receiver can inspect the conversion
// mode and source machine of every delivery (diagnostic surface of §5).
func TestModeByteVisibleToReceiver(t *testing.T) {
	w, _ := oneNetWorld(t)
	recv, err := w.Attach(w.MustHost("sun-x", machine.Sun68K, "ring"), "recv", nil)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := w.Attach(w.MustHost("vax-x", machine.VAX, "ring"), "sender", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sender.Locate("recv")
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(u, "m", "text"); err != nil {
		t.Fatal(err)
	}
	d, err := recv.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if d.SrcMachine() != machine.VAX {
		t.Errorf("SrcMachine = %v", d.SrcMachine())
	}
	if d.Mode() != wire.ModePacked {
		t.Errorf("Mode = %v (string body across byte orders must be packed)", d.Mode())
	}
	if d.Type != "m" {
		t.Errorf("Type = %q", d.Type)
	}
}
