package ntcs_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ntcs"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/internal/nameserver"
	"ntcs/sim"
)

// startShardedNS boots a sharded name service: `shards` groups of
// `replicas` servers each, returning the server modules by group. Every
// module attached afterwards sees the full shard map in its well-known
// preload.
func startShardedNS(t *testing.T, w *sim.World, shards, replicas int) [][]*ntcs.Module {
	t.Helper()
	groups := make([][]*ntcs.Module, shards)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			host := w.MustHost(fmt.Sprintf("ns-%d-%d-host", s, r), machine.Apollo, "ring")
			m, err := w.StartNameServerShard(host, fmt.Sprintf("ns-%d-%d", s, r), s)
			if err != nil {
				t.Fatal(err)
			}
			groups[s] = append(groups[s], m)
		}
	}
	return groups
}

// namesPerShard finds one name owned by each shard group under the
// world's current hash partition.
func namesPerShard(t *testing.T, w *sim.World, shards int) []string {
	t.Helper()
	wk := w.WellKnown()
	out := make([]string, shards)
	found := 0
	for i := 0; found < shards && i < 10_000; i++ {
		name := fmt.Sprintf("svc-%d", i)
		if s := wk.ShardForName(name); out[s] == "" {
			out[s] = name
			found++
		}
	}
	if found != shards {
		t.Fatalf("could not find a name for every shard: %v", out)
	}
	return out
}

// TestShardedNameService exercises the hash-partitioned namespace end to
// end: registrations land only on the owning shard group (replicated
// within it, absent from the others), name resolution routes to the
// single owning group, and attribute queries fan out across every group
// and merge.
func TestShardedNameService(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	groups := startShardedNS(t, w, 2, 2)
	t.Cleanup(w.Close)
	if n := w.WellKnown().NumShards(); n != 2 {
		t.Fatalf("NumShards = %d, want 2", n)
	}
	names := namesPerShard(t, w, 2)

	servers := make([]*ntcs.Module, 2)
	for s, name := range names {
		m, err := w.Attach(w.MustHost("host-"+name, machine.VAX, "ring"), name,
			map[string]string{"role": "worker"})
		if err != nil {
			t.Fatal(err)
		}
		echoServe(m)
		servers[s] = m
	}
	client, err := w.Attach(w.MustHost("client-host", machine.VAX, "ring"), "client", nil)
	if err != nil {
		t.Fatal(err)
	}

	// Resolution and messaging work for names on both shards.
	for s, name := range names {
		u, err := client.Locate(name)
		if err != nil {
			t.Fatalf("Locate(%q): %v", name, err)
		}
		if u != servers[s].UAdd() {
			t.Fatalf("Locate(%q) = %v, want %v", name, u, servers[s].UAdd())
		}
		var reply string
		if err := client.Call(u, "q", "hi", &reply); err != nil || reply != "echo:hi" {
			t.Fatalf("Call via shard %d: %q, %v", s, reply, err)
		}
	}

	// The partition is real: each record lives on every replica of its
	// owning group (intra-group replication is async, so poll) and on no
	// replica of the other group.
	deadline := time.Now().Add(5 * time.Second)
	for s, name := range names {
		for _, replica := range groups[s] {
			for {
				if _, err := replica.DB().Resolve(name); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("%q never replicated within its owning shard %d", name, s)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		for _, other := range groups[1-s] {
			if _, err := other.DB().Resolve(name); !errors.Is(err, nameserver.ErrNotFound) {
				t.Errorf("%q leaked onto shard %d: %v", name, 1-s, err)
			}
		}
	}

	// Attribute queries cannot be answered by one group: they fan out and
	// the results merge across shards.
	recs, err := client.LocateAttrs(map[string]string{"role": "worker"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("LocateAttrs found %d workers, want 2: %+v", len(recs), recs)
	}

	totals := w.StatsTotals()
	if totals.Counters["ns.shard.routed"] == 0 {
		t.Error("no request was metered as routed to its owning shard")
	}
	if totals.Counters["ns.shard.fanouts"] == 0 {
		t.Error("the attribute query was not metered as a cross-shard fan-out")
	}
	if totals.Counters["ns.shard.partials"] != 0 {
		t.Errorf("ns.shard.partials = %d with every shard healthy",
			totals.Counters["ns.shard.partials"])
	}
}

// TestShardKillChaos is the graceful-degradation contract of the
// partitioned namespace: killing every replica of one shard group takes
// out resolution for that shard's slice of the namespace only. Names on
// the surviving shard keep resolving, established conversations keep
// flowing, and the episode is visible in the shard metrics.
func TestShardKillChaos(t *testing.T) {
	seed := chaosSeed()
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{Seed: seed})
	groups := startShardedNS(t, w, 2, 2)
	t.Cleanup(w.Close)
	names := namesPerShard(t, w, 2)

	servers := make([]*ntcs.Module, 2)
	for s, name := range names {
		m, err := w.Attach(w.MustHost("host-"+name, machine.VAX, "ring"), name, nil)
		if err != nil {
			t.Fatal(err)
		}
		echoServe(m)
		servers[s] = m
	}
	// Short call timeout: probing a dead shard must fail in milliseconds,
	// not the 5s default.
	client, err := w.AttachConfig(w.MustHost("client-host", machine.VAX, "ring"), ntcs.Config{
		Name:        "client",
		CallTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if _, err := client.Locate(name); err != nil {
			t.Fatalf("warmup Locate(%q): %v", name, err)
		}
	}

	// Workload against the shard that stays up: every resolution is fresh
	// (no lease cache on the client), so each sample re-proves the
	// surviving shard answers while its sibling is dead.
	type sample struct {
		at time.Time
		ok bool
	}
	var (
		mu      sync.Mutex
		samples []sample
	)
	stop := make(chan struct{})
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			u, err := client.Locate(names[0])
			if err == nil {
				var reply string
				err = client.Call(u, "q", "ping", &reply)
			}
			mu.Lock()
			samples = append(samples, sample{at: time.Now(), ok: err == nil})
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	chaos := sim.NewChaos(seed)
	chaos.ObserveStats(w.StatsTotals)
	chaos.KillShard(300*time.Millisecond, "group-1", groups[1]...)
	start := time.Now()
	records := chaos.Run(context.Background())
	if len(records) != 1 {
		t.Fatalf("chaos fired %d events, want 1", len(records))
	}
	killedAt := start.Add(records[0].Fired)

	// The dead shard's slice of the namespace is gone: resolution fails
	// once the client exhausts the group's replicas.
	deadline := time.Now().Add(5 * time.Second)
	var lostErr error
	for time.Now().Before(deadline) {
		if _, lostErr = client.Locate(names[1]); lostErr != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lostErr == nil {
		t.Errorf("Locate(%q) still succeeds with every shard-1 replica dead", names[1])
	}

	// The surviving shard is unaffected: fresh resolution and messaging
	// both work right now, with the sibling group dead.
	u0, err := client.Locate(names[0])
	if err != nil {
		t.Fatalf("Locate(%q) with shard 1 dead: %v", names[0], err)
	}
	var reply string
	if err := client.Call(u0, "q", "after", &reply); err != nil || reply != "echo:after" {
		t.Fatalf("Call on surviving shard: %q, %v", reply, err)
	}

	close(stop)
	<-workerDone

	// The workload on the surviving shard must not have starved after the
	// kill: resolutions of shard-0 names never touch the dead group.
	mu.Lock()
	defer mu.Unlock()
	okAfter, totalAfter := 0, 0
	for _, s := range samples {
		if !s.at.After(killedAt) {
			continue
		}
		totalAfter++
		if s.ok {
			okAfter++
		}
	}
	if totalAfter == 0 || okAfter < totalAfter*9/10 {
		t.Errorf("surviving-shard workload degraded after the kill: %d/%d ok", okAfter, totalAfter)
	}

	totals := w.StatsTotals()
	if totals.Counters["ns.shard.routed"] == 0 {
		t.Error("no request was metered as shard-routed")
	}
	if totals.Counters["nsp.query_failures"] == 0 {
		t.Error("probing the dead shard left nsp.query_failures at 0")
	}
	for _, rec := range records {
		if len(rec.Delta) > 0 {
			t.Logf("episode %-16s delta %v", rec.Name, rec.Delta)
		}
	}
}
