package ntcs_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ntcs"
	"ntcs/internal/core"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/sim"
)

// TestBackpressureDirect starves a direct circuit of credit — the
// receiver's admission valve is throttled to a trickle — and asserts the
// full contract: WithNoBlock sends fail fast with an error matching
// ntcs.ErrBackpressure whose inspectable form carries the peer and queue
// depth; blocking sends give up after the module's CreditWaitMax; every
// send that returned nil is delivered intact and in order; and once the
// valve reopens, sending works again.
func TestBackpressureDirect(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	const window = 8
	recv, err := w.AttachConfig(w.MustHost("recv-host", machine.VAX, "ring"), core.Config{
		Name:         "bp-receiver",
		CreditWindow: window,
		InboxSize:    4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	sender, err := w.AttachConfig(w.MustHost("send-host", machine.VAX, "ring"), core.Config{
		Name:          "bp-sender",
		CreditWaitMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := sender.Locate("bp-receiver")
	if err != nil {
		t.Fatal(err)
	}

	// Slow-loris the receiver: its ND-Layer still drains frames, but hands
	// out almost no fresh credit.
	recv.SetAdmissionRate(0.1)

	ctx := context.Background()
	accepted := 0
	// fill pumps WithNoBlock sends until the window refuses one, and
	// returns that refusal (nil if the circuit never pushed back).
	fill := func() error {
		for i := 0; i < 20*window; i++ {
			err := sender.SendMsg(ctx, u, "seq", []byte(fmt.Sprintf("m-%04d", accepted)), ntcs.WithNoBlock)
			switch {
			case err == nil:
				accepted++
			case errors.Is(err, ntcs.ErrBackpressure):
				return err
			default:
				t.Fatalf("send %d: unexpected error %v", accepted, err)
			}
		}
		return nil
	}
	bperr := fill()
	if bperr == nil {
		t.Fatalf("no WithNoBlock send was refused after %d accepted (window %d, admission throttled)", accepted, window)
	}
	// The first refusal can race a grant already in flight; let it land,
	// then top the window back up so the starvation is stable (the next
	// admission token is ten seconds out at 0.1 grants/sec).
	time.Sleep(200 * time.Millisecond)
	if again := fill(); again == nil {
		t.Fatalf("window kept refilling after the admission valve closed (%d accepted)", accepted)
	}
	var bp *ntcs.BackpressureError
	if !errors.As(bperr, &bp) {
		t.Fatalf("refused send error %v does not expose *BackpressureError", bperr)
	}
	if bp.Peer != u {
		t.Errorf("BackpressureError.Peer = %v, want %v", bp.Peer, u)
	}
	if bp.QueueDepth <= 0 || bp.SuggestedWait <= 0 {
		t.Errorf("BackpressureError not inspectable: depth=%d wait=%v", bp.QueueDepth, bp.SuggestedWait)
	}

	// A blocking send against the same starved circuit waits out
	// CreditWaitMax (50ms here) and then surfaces the same sentinel.
	start := time.Now()
	if err := sender.SendMsg(ctx, u, "seq", []byte("blocked")); !errors.Is(err, ntcs.ErrBackpressure) {
		t.Fatalf("blocking send on starved circuit: got %v, want ErrBackpressure", err)
	} else if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Errorf("blocking send gave up after %v, before the 50ms credit wait", waited)
	}

	// Backpressure refused cleanly: everything accepted arrives, in order,
	// uncorrupted.
	for i := 0; i < accepted; i++ {
		d, err := recv.Recv(10 * time.Second)
		if err != nil {
			t.Fatalf("after %d deliveries: %v", i, err)
		}
		var body []byte
		if err := d.Decode(&body); err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("m-%04d", i); string(body) != want {
			t.Fatalf("delivery %d: body %q, want %q", i, body, want)
		}
	}

	// Heal: with the valve open the circuit drains and sends succeed again.
	recv.SetAdmissionRate(0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := sender.SendMsg(ctx, u, "seq", []byte("healed"), ntcs.WithNoBlock); err == nil {
			break
		} else if !errors.Is(err, ntcs.ErrBackpressure) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("circuit never recovered after admission valve reopened")
		}
		time.Sleep(10 * time.Millisecond)
	}

	snap := sender.Stats().Snapshot()
	if snap.Counters["nd.backpressure.errors"] == 0 {
		t.Error("sender nd.backpressure.errors = 0; refusals were not metered")
	}
}

// TestBackpressureAcrossGateway congests the far side of a chained
// circuit: the gateway's downstream LVC to a slow-loris receiver runs
// out of credit, so the relay must drop frames and NACK the upstream
// sender — observable as nd.backpressure.drops and nd.nacks at the
// gateway and nd.backpressure.nacks_in at the sender — while the circuit
// itself stays up and traffic flows again after the receiver heals.
func TestBackpressureAcrossGateway(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("alpha", memnet.Options{})
	w.AddNetwork("beta", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "alpha")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	gw, err := w.StartGateway(w.MustHost("gw-host", machine.Apollo, "alpha", "beta"), "gw-ab")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	recv, err := w.AttachConfig(w.MustHost("recv-host", machine.VAX, "beta"), core.Config{
		Name:         "gw-bp-receiver",
		CreditWindow: 8,
		InboxSize:    8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	sender, err := w.Attach(w.MustHost("send-host", machine.VAX, "alpha"), "gw-bp-sender", nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := sender.Locate("gw-bp-receiver")
	if err != nil {
		t.Fatal(err)
	}

	// Prime the chained circuit while the receiver is healthy.
	if err := sender.Send(u, "seq", []byte("prime")); err != nil {
		t.Fatal(err)
	}
	if _, err := recv.Recv(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Choke the receiver, then flood. The congestion lands on the
	// gateway's downstream circuit: the relay waits out its bounded credit
	// budget, then sheds the frame rather than park forever or tear the
	// chain down. While relay workers wait, the gateway stops consuming the
	// sender's frames, so the sender's own first hop may legitimately feel
	// backpressure too — propagation toward the origin, not a failure.
	recv.SetAdmissionRate(0.1)
	deadline := time.Now().Add(30 * time.Second)
	for gw.Stats().Snapshot().Counters["nd.backpressure.drops"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gateway never hit downstream backpressure")
		}
		if err := sender.Send(u, "seq", []byte("flood")); err != nil && !errors.Is(err, ntcs.ErrBackpressure) {
			t.Fatalf("sender first hop failed: %v", err)
		}
	}

	gwSnap := gw.Stats().Snapshot()
	if gwSnap.Counters["nd.nacks"] == 0 {
		t.Error("gateway dropped on backpressure but sent no NACK upstream")
	}

	// The NACK reaches the sender's ND-Layer and slows it down.
	deadline = time.Now().Add(10 * time.Second)
	for sender.Stats().Snapshot().Counters["nd.backpressure.nacks_in"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender never saw the gateway's NACK")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The relayed circuit survived the episode: heal the receiver and
	// verify end-to-end delivery still works over the same chain. The
	// first-hop window may still be exhausted while the backlog drains, so
	// backpressure refusals here are retried, not fatal.
	recv.SetAdmissionRate(0)
	for i := 0; ; i++ {
		if err := sender.Send(u, "seq", []byte("after-heal")); err != nil && !errors.Is(err, ntcs.ErrBackpressure) {
			t.Fatalf("post-heal send: %v", err)
		}
		d, err := recv.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("post-heal recv: %v", err)
		}
		var body []byte
		if err := d.Decode(&body); err != nil {
			t.Fatal(err)
		}
		if string(body) == "after-heal" {
			break
		}
		// Backlogged flood frames drain first; keep reading.
		if i > 20000 {
			t.Fatal("post-heal message never arrived")
		}
	}
}

// TestSlowLorisChaosEpisode drives the same failure through the chaos
// harness: a scheduled SlowLorisEpisode throttles the receiver
// mid-stream, the episode's stats delta shows backpressure engaging, and
// the heal event restores flow — the congestion analogue of the soak's
// cable pulls.
func TestSlowLorisChaosEpisode(t *testing.T) {
	w := sim.NewWorld()
	w.AddNetwork("ring", memnet.Options{})
	nsHost := w.MustHost("ns-host", machine.Apollo, "ring")
	if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	recv, err := w.AttachConfig(w.MustHost("recv-host", machine.VAX, "ring"), core.Config{
		Name:         "loris-receiver",
		CreditWindow: 8,
		InboxSize:    8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	sender, err := w.AttachConfig(w.MustHost("send-host", machine.VAX, "ring"), core.Config{
		Name:          "loris-sender",
		CreditWaitMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := sender.Locate("loris-receiver")
	if err != nil {
		t.Fatal(err)
	}

	chaos := sim.NewChaos(7).ObserveStats(w.StatsTotals)
	chaos.SlowLorisEpisode(50*time.Millisecond, 300*time.Millisecond, "loris-receiver", recv, 0.1)
	// A terminal marker event so the last episode's delta is recorded too.
	chaos.Schedule(500*time.Millisecond, "end", func() {})

	stop := make(chan struct{})
	refusals := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				refusals <- n
				return
			default:
			}
			if err := sender.SendMsg(context.Background(), u, "tick", []byte("t"), ntcs.WithNoBlock); errors.Is(err, ntcs.ErrBackpressure) {
				n++
				time.Sleep(time.Millisecond)
			}
		}
	}()

	log := chaos.Run(context.Background())
	close(stop)
	n := <-refusals

	if len(log) != 3 {
		t.Fatalf("chaos fired %d events, want 3: %+v", len(log), log)
	}
	if n == 0 {
		t.Error("no send was refused during the slow-loris episode")
	}
	// The heal event's delta covers the choked window: backpressure
	// refusals must have been metered somewhere inside it.
	healDelta := log[1].Delta
	endDelta := log[2].Delta
	if healDelta["nd.backpressure.errors"] == 0 && endDelta["nd.backpressure.errors"] == 0 {
		t.Errorf("no nd.backpressure.errors recorded across the episode: heal=%v end=%v", healDelta, endDelta)
	}

	// Flow restored after the heal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := sender.SendMsg(context.Background(), u, "tick", []byte("done"), ntcs.WithNoBlock); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sends still refused after the slow-loris healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
