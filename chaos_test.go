package ntcs_test

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ntcs"
	"ntcs/internal/ipcs/memnet"
	"ntcs/internal/machine"
	"ntcs/sim"
)

// chaosSeed returns the soak seed: fixed by default so failures reproduce,
// overridable via NTCS_SEED or NTCS_CHAOS_SEED (the Makefile soak target
// sets the latter).
func chaosSeed() int64 {
	for _, key := range []string{"NTCS_SEED", "NTCS_CHAOS_SEED"} {
		if s := os.Getenv(key); s != "" {
			if v, err := strconv.ParseInt(s, 10, 64); err == nil {
				return v
			}
		}
	}
	return 42
}

// TestChaosSoak drives a two-network world through the paper's worst
// afternoon: the only preloaded gateway crashes mid-conversation (§4.3),
// the primary Name Server crashes without deregistering (§6.3), and both
// networks suffer 10% loss episodes — on a deterministic schedule. The
// soak asserts the self-healing contract: no acknowledged call is ever
// lost or corrupted, and the system recovers from every episode without
// any manual cache invalidation.
func TestChaosSoak(t *testing.T) {
	seed := chaosSeed()

	w := sim.NewWorld()
	alpha := w.AddNetwork("alpha", memnet.Options{Seed: seed})
	beta := w.AddNetwork("beta", memnet.Options{Seed: seed + 1})
	nsPrimary, err := w.StartNameServer(w.MustHost("ns1-host", machine.Apollo, "alpha"), "ns-primary")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.StartNameServer(w.MustHost("ns2-host", machine.Apollo, "alpha"), "ns-replica"); err != nil {
		t.Fatal(err)
	}
	gw1, err := w.StartGateway(w.MustHost("gw1-host", machine.Apollo, "alpha", "beta"), "gw-main")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	// The standby is registered with the naming service only: failover
	// must locate it through the topology query, not the preload.
	if _, err := w.StartOrdinaryGateway(w.MustHost("gw2-host", machine.Apollo, "alpha", "beta"), "gw-standby"); err != nil {
		t.Fatal(err)
	}

	server, err := w.Attach(w.MustHost("beta-host", machine.VAX, "beta"), "server", nil)
	if err != nil {
		t.Fatal(err)
	}
	echoServe(server)
	client, err := w.AttachConfig(w.MustHost("alpha-host", machine.VAX, "alpha"), ntcs.Config{
		Name: "client",
		// Short call timeout: a lost frame must cost the workload well
		// under an episode length, not the 5s default.
		CallTimeout: 750 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := client.Locate("server")
	if err != nil {
		t.Fatal(err)
	}
	var reply string
	if err := client.Call(u, "q", "warmup", &reply); err != nil {
		t.Fatal(err)
	}

	// Workload: sequential numbered calls. A call that returns success
	// with the wrong body is a lost/corrupted acknowledged call — the one
	// thing the soak forbids outright. Failures are tolerated during
	// episodes; recovery is asserted per-event below.
	type sample struct {
		at time.Time
		ok bool
	}
	var (
		mu        sync.Mutex
		samples   []sample
		corrupted []string
	)
	stop := make(chan struct{})
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		for seq := 0; ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			msg := fmt.Sprintf("m%d", seq)
			var got string
			err := client.Call(u, "q", msg, &got)
			mu.Lock()
			if err == nil && got != "echo:"+msg {
				corrupted = append(corrupted, fmt.Sprintf("seq %d: reply %q", seq, got))
			}
			samples = append(samples, sample{at: time.Now(), ok: err == nil})
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	}()

	chaos := sim.NewChaos(seed)
	chaos.ObserveStats(w.StatsTotals)
	chaos.KillModule(400*time.Millisecond, "gw-main", gw1)
	chaos.LossEpisode(alpha, 1800*time.Millisecond, 700*time.Millisecond, 0.10)
	chaos.KillModule(3200*time.Millisecond, "ns-primary", nsPrimary)
	chaos.LossEpisode(beta, 4200*time.Millisecond, 700*time.Millisecond, 0.10)

	start := time.Now()
	records := chaos.Run(context.Background())
	if len(records) != 6 {
		t.Errorf("chaos fired %d events, want 6: %+v", len(records), records)
	}

	// Settle: after the last heal the system must return to steady state.
	deadline := time.Now().Add(5 * time.Second)
	var settleErr error
	for time.Now().Before(deadline) {
		if settleErr = client.Call(u, "q", "settle", &reply); settleErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	<-workerDone
	if settleErr != nil {
		t.Fatalf("system never settled after the chaos schedule: %v", settleErr)
	}
	if reply != "echo:settle" {
		t.Errorf("settle reply = %q", reply)
	}

	// With the primary Name Server dead (and still registered as alive),
	// naming traffic must rotate to the replica.
	if _, err := client.Locate("server"); err != nil {
		t.Errorf("Locate after primary Name Server death: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(corrupted) > 0 {
		t.Errorf("%d acknowledged calls lost or corrupted: %v", len(corrupted), corrupted)
	}
	okCount := 0
	for _, s := range samples {
		if s.ok {
			okCount++
		}
	}
	if okCount < 50 {
		t.Errorf("only %d successful calls across the soak; workload starved", okCount)
	}

	// The metrics must tell the same story the samples do: surviving the
	// gateway kill requires gateway failovers, surviving the Name Server
	// kill requires replica rotations, and both recoveries ride the retry
	// budgets. Zeros here mean the observability layer missed the episode.
	totals := w.StatsTotals()
	if totals.Counters["ip.gateway_failovers"] == 0 {
		t.Errorf("soak survived a gateway kill with ip.gateway_failovers = 0")
	}
	if totals.Counters["nsp.replica_rotations"] == 0 {
		t.Errorf("soak survived a Name Server kill with nsp.replica_rotations = 0")
	}
	var retryTotal uint64
	for name, v := range totals.Counters {
		if strings.HasPrefix(name, "retry.attempts.") {
			retryTotal += v
		}
	}
	if retryTotal == 0 {
		t.Errorf("soak recovered without a single metered retry attempt")
	}
	for _, rec := range records {
		if len(rec.Delta) > 0 {
			t.Logf("episode %-24s delta %v", rec.Name, rec.Delta)
		}
	}

	// Per-event recovery latency: the first successful call after each
	// kill, measured from the moment the module died.
	for _, rec := range records {
		if rec.Name != "kill gw-main" && rec.Name != "kill ns-primary" {
			continue
		}
		killedAt := start.Add(rec.Fired)
		recovered := time.Duration(-1)
		for _, s := range samples {
			if s.ok && s.at.After(killedAt) {
				recovered = s.at.Sub(killedAt)
				break
			}
		}
		if recovered < 0 {
			t.Errorf("%s: no successful call after the kill", rec.Name)
			continue
		}
		t.Logf("%s: first successful call %v after the crash", rec.Name, recovered)
		if recovered > 5*time.Second {
			t.Errorf("%s: recovery took %v", rec.Name, recovered)
		}
	}
}
