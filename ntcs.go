// Package ntcs is a Go reproduction of the portable, network-transparent
// communication system (NTCS) of Zeleznik, "A Portable,
// Network-Transparent Communication System for Message-Based
// Applications", ICDCS 1986 — the message-passing substrate of the Utah
// Retrieval System Architecture (URSA).
//
// The NTCS provides interprocess communication for large-grain,
// loosely-coupled message-based applications while isolating them from
// physical location, underlying communication details, and internetting.
// Modules address each other through logical names resolved once to
// location-independent UAdds; relocation thereafter is transparent:
//
//	m, _ := ntcs.Attach(ntcs.Config{ Name: "host-1", Machine: machine.VAX, ... })
//	searcher, _ := m.Locate("searcher")
//	var hits SearchReply
//	err := m.Call(searcher, "search", SearchRequest{Terms: "retrieval"}, &hits)
//
// The architecture is the paper's, layer for layer:
//
//   - ND-Layer (internal/ndlayer): local virtual circuits over any native
//     IPCS — in-memory (memnet), TCP (tcpnet), or Apollo-MBX-style
//     mailboxes (mbx);
//   - IP-Layer and Gateways (internal/iplayer): internet circuits chained
//     across disjoint networks, routed from naming-service topology;
//   - LCM-Layer (internal/lcm): open-less messaging, forwarding tables,
//     the address-fault handler, dynamic reconfiguration;
//   - NSP-Layer and Name Server (internal/nsp, internal/nameserver): the
//     recursive naming service built on top of the Nucleus it serves;
//   - conversion machinery (internal/machine, internal/pack,
//     internal/wire): image, packed, and shift modes.
//
// Use the sim package to assemble simulated testbeds (networks, hosts,
// name servers, gateways), and the drts packages for the distributed
// run-time support services (time, monitoring, process control).
package ntcs

import (
	"ntcs/internal/addr"
	"ntcs/internal/core"
	"ntcs/internal/lcm"
	"ntcs/internal/machine"
	"ntcs/internal/ndlayer"
	"ntcs/internal/nsp"
)

// UAdd is the unique, location-independent module address of paper §2.3.
type UAdd = addr.UAdd

// Endpoint is a physical-address record: network, address, machine type.
type Endpoint = addr.Endpoint

// WellKnown is the preloaded address configuration of §3.4.
type WellKnown = addr.WellKnown

// WellKnownEntry is one preloaded module: a Name Server or prime gateway.
type WellKnownEntry = addr.WellKnownEntry

// Machine identifies a simulated machine architecture (§5).
type Machine = machine.Type

// The machine types of the URSA testbed.
const (
	VAX     = machine.VAX
	Sun68K  = machine.Sun68K
	Apollo  = machine.Apollo
	Pyramid = machine.Pyramid
)

// Module is an attached NTCS module: the application's entire view of the
// communication system (the ComMod of §2.1).
type Module = core.Module

// Config assembles a module.
type Config = core.Config

// Converter carries application pack/unpack functions (§5.1).
type Converter = core.Converter

// Delivery is one received message.
type Delivery = core.Delivery

// Record is a naming service record (§3.2).
type Record = nsp.Record

// Module kinds.
const (
	KindApplication = core.KindApplication
	KindGateway     = core.KindGateway
	KindNameServer  = core.KindNameServer
)

// Well-known addresses (§3.4).
const (
	NameServerUAdd = addr.NameServer
)

// Errors surfaced at the application interface.
var (
	ErrRemote        = lcm.ErrRemote           // the callee replied with an error
	ErrCallTimeout   = lcm.ErrCallTimeout      // no reply arrived in time; matches context.DeadlineExceeded
	ErrNoReplacement = lcm.ErrNoReplacement    // destination gone, no successor module
	ErrNotFound      = nsp.ErrNotFound         // name or address unknown to the naming service
	ErrBackpressure  = ndlayer.ErrBackpressure // circuit out of send credit; the peer has not drained
)

// RemoteError is the structured form of an error reply: errors.As
// exposes the failing callee's UAdd and its message. Every RemoteError
// also matches ErrRemote under errors.Is.
type RemoteError = lcm.RemoteError

// BackpressureError is the structured form of a send refused (or timed
// out) for want of circuit credit: the destination exists and the
// circuit is healthy, but the receiver has not consumed enough of what
// was already sent. errors.Is(err, ErrBackpressure) matches it;
// errors.As exposes the peer, the circuit, the queue depth at the moment
// the send gave up, and a suggested backoff. It is never a relocation
// signal: the LCM address-fault handler ignores it and the IP-Layer
// keeps the circuit. Callers choose the policy — retry after
// SuggestedWait, shed load, or block without WithNoBlock.
type BackpressureError = ndlayer.BackpressureError

// SendOption tunes Module.SendMsg: WithNoCopy for opaque []byte bodies,
// WithNoBlock for fail-fast backpressure.
type SendOption = core.SendOption

// Send options.
const (
	WithNoCopy  = core.WithNoCopy
	WithNoBlock = core.WithNoBlock
)

// Attach binds a module to the NTCS (§3.2): it creates communication
// resources, registers with the naming service, adopts the assigned UAdd
// and returns the live ComMod.
func Attach(cfg Config) (*Module, error) { return core.Attach(cfg) }
