// Throughput benchmarks for the PR-4 batching work (DESIGN.md §9,
// EXPERIMENTS.md E-THRU): pipelined many-senders→one-receiver message
// rate with and without the ND-Layer group-commit writer, and the
// gateway relay hop that the zero-copy cut-through accelerates.
package ntcs_test

import (
	"sync/atomic"
	"testing"
	"time"

	"ntcs/internal/core"
	"ntcs/internal/experiments"
	"ntcs/internal/machine"
	"ntcs/sim"
)

// BenchmarkThroughputPipelined measures sustained one-way message rate:
// GOMAXPROCS senders firing datagrams at a single receiver over loopback
// TCP, the timer stopping only once every message has been delivered.
// The "coalesced" variant enables the ND-Layer group-commit writer, so
// concurrent senders on the shared circuit are drained into single
// vectored writes instead of one syscall per frame.
func BenchmarkThroughputPipelined(b *testing.B) {
	const payloadLen = 256
	run := func(b *testing.B, coalesce bool) {
		w := sim.NewWorld()
		w.SetCoalesceWrites(coalesce)
		w.AddTCPNetwork("net")
		defer w.Close()
		nsHost := w.MustHost("ns-host", machine.Apollo, "net")
		if _, err := w.StartNameServer(nsHost, "ns"); err != nil {
			b.Fatal(err)
		}
		rHost := w.MustHost("recv-host", machine.VAX, "net")
		recv, err := w.AttachConfig(rHost, core.Config{Name: "receiver", InboxSize: 1 << 15})
		if err != nil {
			b.Fatal(err)
		}
		var received atomic.Int64
		for i := 0; i < 4; i++ {
			go func() {
				for {
					if _, err := recv.Recv(time.Hour); err != nil {
						return
					}
					received.Add(1)
				}
			}()
		}
		sHost := w.MustHost("send-host", machine.VAX, "net")
		sender, err := w.Attach(sHost, "sender", nil)
		if err != nil {
			b.Fatal(err)
		}
		u, err := sender.Locate("receiver")
		if err != nil {
			b.Fatal(err)
		}
		body := make([]byte, payloadLen)
		if err := sender.Send(u, "m", body); err != nil {
			b.Fatal(err)
		}
		for received.Load() < 1 {
			time.Sleep(time.Millisecond)
		}

		base := received.Load()
		want := base + int64(b.N)
		b.SetBytes(payloadLen)
		b.ReportAllocs()
		// Keep the sender pool deep even on small GOMAXPROCS: the writer
		// only coalesces what concurrent senders pile up behind it.
		b.SetParallelism(8)
		b.ResetTimer()
		start := time.Now()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := sender.SendBytes(u, "m", body); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Pipelined: sends return before delivery, so wait for the
		// receiver to catch up. A stall means messages were dropped
		// (inbox overflow) and the run is invalid.
		lastProgress := time.Now()
		last := received.Load()
		for {
			got := received.Load()
			if got >= want {
				break
			}
			if got != last {
				last, lastProgress = got, time.Now()
			} else if time.Since(lastProgress) > 10*time.Second {
				b.Fatalf("delivery stalled at %d/%d messages", got-base, b.N)
			}
			time.Sleep(100 * time.Microsecond)
		}
		elapsed := time.Since(start)
		b.StopTimer()
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "msgs/s")
	}
	b.Run("direct", func(b *testing.B) { run(b, false) })
	b.Run("coalesced", func(b *testing.B) { run(b, true) })
}

// BenchmarkGatewayCutThrough times the one-gateway round trip the
// zero-copy relay path accelerates: the gateway patches the circuit word
// in place and forwards the inbound frame bytes instead of re-marshaling
// the header (compare against the parent commit back-to-back; see
// BENCH_PR4.json).
func BenchmarkGatewayCutThrough(b *testing.B) {
	env, err := experiments.PairWithHops(1, machine.VAX, machine.VAX)
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	if err := env.RoundTrip(256); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.RoundTrip(256); err != nil {
			b.Fatal(err)
		}
	}
}
